//! Lexer for the record calculus.

use crate::diag::Diag;
use crate::span::Span;
use crate::symbol::Symbol;
use crate::token::{Token, TokenKind};

/// Tokenizes `source`, producing the token stream (terminated by
/// [`TokenKind::Eof`]) or a lexical diagnostic.
///
/// Comments run from `--` to the end of the line.
pub fn lex(source: &str) -> Result<Vec<Token>, Diag> {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Result<Vec<Token>, Diag> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos as u32;
            let Some(b) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start, start),
                });
                return Ok(tokens);
            };
            let kind = self.token(b, start)?;
            let span = Span::new(start, self.pos as u32);
            tokens.push(Token { kind, span });
        }
    }

    fn token(&mut self, b: u8, start: u32) -> Result<TokenKind, Diag> {
        Ok(match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let word = self.ident();
                match word {
                    "def" => TokenKind::Def,
                    "let" => TokenKind::Let,
                    "in" => TokenKind::In,
                    "if" => TokenKind::If,
                    "then" => TokenKind::Then,
                    "else" => TokenKind::Else,
                    "when" => TokenKind::When,
                    _ => TokenKind::Ident(Symbol::intern(word)),
                }
            }
            b'0'..=b'9' => self.number(start)?,
            b'"' => self.string(start)?,
            b'\\' => {
                self.bump();
                TokenKind::Lambda
            }
            b'.' => {
                self.bump();
                TokenKind::Dot
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Eq
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'-' => {
                // `--` comments are consumed by skip_trivia, so a lone `-`
                // here is minus or arrow.
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Arrow
                } else {
                    TokenKind::Minus
                }
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(self.error(start, "expected `&&`"));
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(self.error(start, "expected `||`"));
                }
            }
            b'#' => {
                self.bump();
                TokenKind::Hash
            }
            b'@' => {
                self.bump();
                match self.peek() {
                    Some(b'@') => {
                        self.bump();
                        TokenKind::AtAt
                    }
                    Some(b'{') => {
                        self.bump();
                        TokenKind::AtBrace
                    }
                    _ => TokenKind::At,
                }
            }
            b'%' => {
                self.bump();
                TokenKind::Percent
            }
            b'^' => {
                self.bump();
                if self.peek() == Some(b'{') {
                    self.bump();
                    TokenKind::CaretBrace
                } else {
                    return Err(self.error(start, "expected `^{` (field renaming)"));
                }
            }
            other => {
                return Err(self.error(start, &format!("unexpected character `{}`", other as char)));
            }
        })
    }

    fn ident(&mut self) -> &'s str {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'\'' {
                self.bump();
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.src[start..self.pos]).expect("ascii identifier")
    }

    fn number(&mut self, start: u32) -> Result<TokenKind, Diag> {
        let begin = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[begin..self.pos]).expect("ascii digits");
        text.parse::<i64>()
            .map(TokenKind::Int)
            .map_err(|_| self.error(start, "integer literal out of range"))
    }

    fn string(&mut self, start: u32) -> Result<TokenKind, Diag> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => return Err(self.error(start, "unterminated string literal")),
                Some(b'"') => {
                    self.bump();
                    return Ok(TokenKind::Str(out));
                }
                Some(b'\\') => {
                    self.bump();
                    match self.peek() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        _ => return Err(self.error(start, "invalid escape sequence")),
                    }
                    self.bump();
                }
                Some(b) => {
                    out.push(b as char);
                    self.bump();
                }
            }
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'-') if self.src.get(self.pos + 1) == Some(&b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn error(&self, start: u32, msg: &str) -> Diag {
        Diag::error(
            Span::new(start, self.pos.max(start as usize + 1) as u32),
            msg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("let xs in iff"),
            vec![
                TokenKind::Let,
                TokenKind::Ident(Symbol::intern("xs")),
                TokenKind::In,
                TokenKind::Ident(Symbol::intern("iff")),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn at_family_disambiguation() {
        assert_eq!(
            kinds("r @ s @@ t @{foo = 1}"),
            vec![
                TokenKind::Ident(Symbol::intern("r")),
                TokenKind::At,
                TokenKind::Ident(Symbol::intern("s")),
                TokenKind::AtAt,
                TokenKind::Ident(Symbol::intern("t")),
                TokenKind::AtBrace,
                TokenKind::Ident(Symbol::intern("foo")),
                TokenKind::Eq,
                TokenKind::Int(1),
                TokenKind::RBrace,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= == < <= + - * && || -> . \\"),
            vec![
                TokenKind::Eq,
                TokenKind::EqEq,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Arrow,
                TokenKind::Dot,
                TokenKind::Lambda,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 -- this is a comment\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![TokenKind::Str("a\nb\"c".to_owned()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("ab  cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(4, 6));
    }

    #[test]
    fn selector_and_removal() {
        assert_eq!(
            kinds("#foo %bar ^{a -> b}"),
            vec![
                TokenKind::Hash,
                TokenKind::Ident(Symbol::intern("foo")),
                TokenKind::Percent,
                TokenKind::Ident(Symbol::intern("bar")),
                TokenKind::CaretBrace,
                TokenKind::Ident(Symbol::intern("a")),
                TokenKind::Arrow,
                TokenKind::Ident(Symbol::intern("b")),
                TokenKind::RBrace,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn huge_int_is_error() {
        assert!(lex("999999999999999999999999999").is_err());
    }
}
