//! Interned identifiers.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use rowpoly_obs::contention::LockTimer;

/// Wait-time accounting for the global interner lock
/// (`lock.wait.lang.interner` in profile reports). The interner is the
/// one mutex every parallel inference worker shares, so it is the
/// first suspect for scaling pathologies.
static INTERNER_LOCK: LockTimer = LockTimer::new("lang.interner");

/// An interned identifier (program variable or record field name).
///
/// Symbols are process-global: the same spelling always interns to the same
/// `Symbol`, so equality is a single integer comparison. Ordering compares
/// the *spelling*, not the interning order, so that sorted field rows print
/// deterministically regardless of parse order.
///
/// Interned strings are leaked (the interner lives for the process), which
/// is the usual trade-off for compiler identifiers.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
    gensym: u32,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
            gensym: 0,
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its unique symbol.
    pub fn intern(name: &str) -> Symbol {
        let mut i = INTERNER_LOCK.lock(interner());
        if let Some(&id) = i.map.get(name) {
            return Symbol(id);
        }
        let id = i.strings.len() as u32;
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.strings.push(leaked);
        i.map.insert(leaked, id);
        Symbol(id)
    }

    /// Generates a fresh symbol guaranteed not to collide with any source
    /// identifier (its spelling contains `'#'`, which the lexer rejects in
    /// identifiers).
    pub fn fresh(prefix: &str) -> Symbol {
        let n = {
            let mut i = INTERNER_LOCK.lock(interner());
            i.gensym += 1;
            i.gensym
        };
        Symbol::intern(&format!("{prefix}#{n}"))
    }

    /// The spelling of this symbol.
    pub fn as_str(self) -> &'static str {
        let i = INTERNER_LOCK.lock(interner());
        i.strings[self.0 as usize]
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Symbol::intern("foo"), Symbol::intern("foo"));
        assert_ne!(Symbol::intern("foo"), Symbol::intern("bar"));
        assert_eq!(Symbol::intern("foo").as_str(), "foo");
    }

    #[test]
    fn ordering_is_by_spelling() {
        // Intern in reverse lexicographic order; Ord must still be textual.
        let z = Symbol::intern("zzz_order");
        let a = Symbol::intern("aaa_order");
        assert!(a < z);
    }

    #[test]
    fn fresh_symbols_are_distinct() {
        let a = Symbol::fresh("r");
        let b = Symbol::fresh("r");
        assert_ne!(a, b);
        assert!(a.as_str().contains('#'));
    }
}
