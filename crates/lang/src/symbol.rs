//! Interned identifiers, sharded for parallel inference.
//!
//! The interner is the one piece of state every inference worker
//! touches constantly: `Symbol` ordering compares *spellings* (so
//! sorted field rows print deterministically), which means every
//! `BTreeMap<Symbol, _>` probe resolves symbols to strings. With the
//! original single `Mutex<Interner>`, four workers spent most of a
//! "busy" run convoying on that mutex. The design here makes the hot
//! paths (`as_str`, repeat `intern`) lock-free:
//!
//! * **Sharding** — a fixed power-of-two array of [`SHARDS`] shards,
//!   routed by the top bits of the spelling's hash. A symbol id packs
//!   its shard in the low [`SHARD_BITS`] bits and its per-shard index
//!   above them, so resolution never consults a global map.
//! * **Append-only string table** — each shard stores resolved
//!   spellings in chunked, never-moving storage: chunk `c` holds
//!   `1024 << c` cells, allocated on demand and published with a
//!   `Release` store, so readers index it without locks and without
//!   ever observing a half-built reallocation.
//! * **Lock-free probe table** — lookups linear-probe a table of
//!   `AtomicU64` slots packing `(hash tag << 32) | (index + 1)`.
//!   Slots are published with `Release` after the spelling cell is
//!   written, so an `Acquire` probe hit always sees the string.
//! * **Write lock only on first intern** — a miss takes the shard's
//!   writer mutex (instrumented as `lang.interner.s0`…`s15` so the
//!   profiler can still see it), **re-probes under the lock**, and
//!   only then leaks the spelling. Racing threads interning the same
//!   new name agree on one id and never double-leak.
//!
//! Probe tables grow under the writer lock at 7/8 occupancy; the old
//! table is leaked because concurrent readers may still hold it (the
//! interner leaks by design — it lives for the process).

use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use rowpoly_obs::contention::LockTimer;
use rowpoly_obs::MemSite;

/// Shard count is `1 << SHARD_BITS`; the shard id lives in the low
/// bits of a [`Symbol`]'s representation.
const SHARD_BITS: u32 = 4;
/// Number of interner shards (16). Plenty for the worker counts the
/// batch pool runs; the profiler shows per-shard contention if not.
const SHARDS: usize = 1 << SHARD_BITS;
const SHARD_MASK: u32 = (SHARDS as u32) - 1;

/// Chunk 0 holds `1 << CHUNK_BASE_LOG2` spellings; each subsequent
/// chunk doubles, so [`CHUNKS`] chunks cover ~67M symbols per shard.
const CHUNK_BASE_LOG2: u32 = 10;
const CHUNKS: usize = 16;

/// Wait-time accounting for the per-shard writer locks
/// (`lock.wait.lang.interner.s0`…`s15` in profile reports). Only the
/// *first* intern of a new spelling takes one of these; steady-state
/// interning and all `as_str` resolution are lock-free, so sustained
/// waits here mean the workload is minting new symbols concurrently.
static SHARD_LOCKS: [LockTimer; SHARDS] = [
    LockTimer::new("lang.interner.s0"),
    LockTimer::new("lang.interner.s1"),
    LockTimer::new("lang.interner.s2"),
    LockTimer::new("lang.interner.s3"),
    LockTimer::new("lang.interner.s4"),
    LockTimer::new("lang.interner.s5"),
    LockTimer::new("lang.interner.s6"),
    LockTimer::new("lang.interner.s7"),
    LockTimer::new("lang.interner.s8"),
    LockTimer::new("lang.interner.s9"),
    LockTimer::new("lang.interner.s10"),
    LockTimer::new("lang.interner.s11"),
    LockTimer::new("lang.interner.s12"),
    LockTimer::new("lang.interner.s13"),
    LockTimer::new("lang.interner.s14"),
    LockTimer::new("lang.interner.s15"),
];

static SHARD_TABLE: [Shard; SHARDS] = [const { Shard::new() }; SHARDS];

/// Attribution site for the interner's (deliberately leaked) spelling
/// storage and probe tables. Only the first-intern slow path allocates,
/// so steady-state interning charges nothing here.
static INTERNER_MEM: MemSite = MemSite::new("lang.interner");

/// Counter behind [`Symbol::fresh`]; global so fresh symbols are
/// distinct across shards and threads without any lock.
static GENSYM: AtomicU32 = AtomicU32::new(0);

/// An interned identifier (program variable or record field name).
///
/// Symbols are process-global: the same spelling always interns to the same
/// `Symbol`, so equality is a single integer comparison. Ordering compares
/// the *spelling*, not the interning order, so that sorted field rows print
/// deterministically regardless of parse order.
///
/// Interned strings are leaked (the interner lives for the process), which
/// is the usual trade-off for compiler identifiers.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

/// The lock-free probe table of one shard: linear probing over slots
/// packing `(spelling-hash tag << 32) | (shard index + 1)`; 0 = empty.
/// Never more than 7/8 full, so reader probes always terminate.
struct Table {
    mask: u64,
    slots: Box<[AtomicU64]>,
}

struct WriterState {
    /// Number of spellings this shard has interned (= next index).
    len: u32,
}

struct Shard {
    /// Chunked append-only spelling storage. Each cell holds a leaked
    /// `*mut &'static str` (a stable allocation for the fat pointer,
    /// so it can be published atomically); null = not yet interned.
    chunks: [AtomicPtr<AtomicPtr<&'static str>>; CHUNKS],
    /// Current probe table; replaced (and the old one leaked) on
    /// growth. Null until the shard's first intern.
    table: AtomicPtr<Table>,
    /// Serializes first-intern writes and table growth.
    writer: Mutex<WriterState>,
}

/// `(chunk, offset)` for a shard-local index. Chunk `c` starts at
/// index `((1 << c) - 1) << CHUNK_BASE_LOG2` and holds
/// `1 << (CHUNK_BASE_LOG2 + c)` cells.
fn chunk_pos(idx: u32) -> (usize, usize) {
    let t = (idx >> CHUNK_BASE_LOG2) + 1;
    let c = 31 - t.leading_zeros();
    let base = ((1u32 << c) - 1) << CHUNK_BASE_LOG2;
    (c as usize, (idx - base) as usize)
}

/// FxHash over the spelling. Collisions are harmless (probe hits
/// compare the actual strings); the top bits route the shard and the
/// low 32 become the slot tag, so the two never alias.
fn hash_spelling(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h.rotate_left(5) ^ u64::from_le_bytes(c.try_into().unwrap())).wrapping_mul(SEED);
    }
    let mut tail = bytes.len() as u64;
    for &b in chunks.remainder() {
        tail = (tail << 8) | b as u64;
    }
    (h.rotate_left(5) ^ tail).wrapping_mul(SEED)
}

impl Shard {
    const fn new() -> Shard {
        Shard {
            chunks: [const { AtomicPtr::new(ptr::null_mut()) }; CHUNKS],
            table: AtomicPtr::new(ptr::null_mut()),
            writer: Mutex::new(WriterState { len: 0 }),
        }
    }

    /// The spelling at shard index `idx`. Lock-free: the cell was
    /// `Release`-published before any id naming it became visible.
    fn resolve(&self, idx: u32) -> &'static str {
        let (c, off) = chunk_pos(idx);
        let chunk = self.chunks[c].load(Ordering::Acquire);
        assert!(!chunk.is_null(), "symbol id was never interned");
        // In-bounds: chunk `c` was allocated with its full capacity and
        // `off < 1 << (CHUNK_BASE_LOG2 + c)` by construction.
        let cell = unsafe { &*chunk.add(off) };
        let p = cell.load(Ordering::Acquire);
        assert!(!p.is_null(), "symbol id was never interned");
        unsafe { *p }
    }

    /// Lock-free lookup of `name` (with hash `h`) in the current probe
    /// table. A miss is *not* authoritative during a concurrent first
    /// intern — the slow path re-probes under the writer lock.
    fn lookup(&self, name: &str, h: u64) -> Option<u32> {
        let table = self.table.load(Ordering::Acquire);
        if table.is_null() {
            return None;
        }
        let table = unsafe { &*table };
        let tag = (h as u32 as u64) << 32;
        let mut i = (h >> 32) & table.mask;
        loop {
            let slot = table.slots[i as usize].load(Ordering::Acquire);
            if slot == 0 {
                return None;
            }
            if slot & 0xFFFF_FFFF_0000_0000 == tag {
                let idx = (slot as u32) - 1;
                if self.resolve(idx) == name {
                    return Some(idx);
                }
            }
            i = (i + 1) & table.mask;
        }
    }

    /// First-intern path: takes the shard writer lock, re-probes (a
    /// racing thread may have won), and only then leaks the spelling
    /// and publishes it — cell first, probe slot second, both
    /// `Release`, so readers that see the slot see the string.
    fn intern_slow(&'static self, name: &str, h: u64, site: &'static LockTimer) -> u32 {
        let _mem = INTERNER_MEM.scope();
        let mut state = site.lock(&self.writer);
        // Dedup before leaking: under the lock a miss is authoritative
        // because every insert serializes on this mutex.
        if let Some(idx) = self.lookup(name, h) {
            return idx;
        }
        let idx = state.len;
        self.ensure_table(idx);

        let (c, off) = chunk_pos(idx);
        let mut chunk = self.chunks[c].load(Ordering::Relaxed);
        if chunk.is_null() {
            let cap = 1usize << (CHUNK_BASE_LOG2 + c as u32);
            let cells: Box<[AtomicPtr<&'static str>]> =
                (0..cap).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
            chunk = Box::leak(cells).as_mut_ptr();
            self.chunks[c].store(chunk, Ordering::Release);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let cell_val: *mut &'static str = Box::leak(Box::new(leaked));
        unsafe { (*chunk.add(off)).store(cell_val, Ordering::Release) };

        let table = unsafe { &*self.table.load(Ordering::Relaxed) };
        let slot_val = ((h as u32 as u64) << 32) | (idx as u64 + 1);
        let mut i = (h >> 32) & table.mask;
        loop {
            let slot = &table.slots[i as usize];
            if slot.load(Ordering::Relaxed) == 0 {
                slot.store(slot_val, Ordering::Release);
                break;
            }
            i = (i + 1) & table.mask;
        }
        state.len = idx + 1;
        idx
    }

    /// Guarantees the probe table can take one more entry while
    /// staying under 7/8 occupancy; grows and republishes it if not.
    /// Caller holds the writer lock. The old table is leaked because
    /// lock-free readers may still be probing it.
    fn ensure_table(&self, len: u32) {
        let old = self.table.load(Ordering::Relaxed);
        let old_cap = if old.is_null() {
            0
        } else {
            unsafe { (*old).mask as usize + 1 }
        };
        if old_cap > 0 && (len as usize + 1) * 8 <= old_cap * 7 {
            return;
        }
        let mut cap = (old_cap * 2).max(64);
        while (len as usize + 1) * 8 > cap * 7 {
            cap *= 2;
        }
        let table = Table {
            mask: cap as u64 - 1,
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        };
        for idx in 0..len {
            let h = hash_spelling(self.resolve(idx).as_bytes());
            let slot_val = ((h as u32 as u64) << 32) | (idx as u64 + 1);
            let mut i = (h >> 32) & table.mask;
            loop {
                let slot = &table.slots[i as usize];
                if slot.load(Ordering::Relaxed) == 0 {
                    slot.store(slot_val, Ordering::Relaxed);
                    break;
                }
                i = (i + 1) & table.mask;
            }
        }
        self.table
            .store(Box::leak(Box::new(table)), Ordering::Release);
    }
}

impl Symbol {
    /// Interns `name`, returning its unique symbol. Lock-free for
    /// spellings already interned; a miss takes one shard's writer
    /// lock (visible as `lock.wait.lang.interner.s*` in profiles).
    pub fn intern(name: &str) -> Symbol {
        let h = hash_spelling(name.as_bytes());
        let shard = (h >> (64 - SHARD_BITS)) as usize;
        let s = &SHARD_TABLE[shard];
        let idx = match s.lookup(name, h) {
            Some(idx) => idx,
            None => s.intern_slow(name, h, &SHARD_LOCKS[shard]),
        };
        Symbol((idx << SHARD_BITS) | shard as u32)
    }

    /// Generates a fresh symbol guaranteed not to collide with any source
    /// identifier (its spelling contains `'#'`, which the lexer rejects in
    /// identifiers).
    pub fn fresh(prefix: &str) -> Symbol {
        let n = GENSYM.fetch_add(1, Ordering::Relaxed) + 1;
        Symbol::intern(&format!("{prefix}#{n}"))
    }

    /// The spelling of this symbol. Lock-free.
    pub fn as_str(self) -> &'static str {
        SHARD_TABLE[(self.0 & SHARD_MASK) as usize].resolve(self.0 >> SHARD_BITS)
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Symbol::intern("foo"), Symbol::intern("foo"));
        assert_ne!(Symbol::intern("foo"), Symbol::intern("bar"));
        assert_eq!(Symbol::intern("foo").as_str(), "foo");
    }

    #[test]
    fn ordering_is_by_spelling() {
        // Intern in reverse lexicographic order; Ord must still be textual.
        let z = Symbol::intern("zzz_order");
        let a = Symbol::intern("aaa_order");
        assert!(a < z);
    }

    #[test]
    fn fresh_symbols_are_distinct() {
        let a = Symbol::fresh("r");
        let b = Symbol::fresh("r");
        assert_ne!(a, b);
        assert!(a.as_str().contains('#'));
    }

    #[test]
    fn chunk_positions_tile_the_index_space() {
        assert_eq!(chunk_pos(0), (0, 0));
        assert_eq!(chunk_pos(1023), (0, 1023));
        assert_eq!(chunk_pos(1024), (1, 0));
        assert_eq!(chunk_pos(3071), (1, 2047));
        assert_eq!(chunk_pos(3072), (2, 0));
        assert_eq!(chunk_pos(3072 + 4095), (2, 4095));
        assert_eq!(chunk_pos(7168), (3, 0));
    }

    #[test]
    fn growth_survives_many_unique_spellings() {
        // Enough unique names to grow every shard's probe table
        // several times and spill shard storage past chunk 0.
        let syms: Vec<Symbol> = (0..20_000)
            .map(|i| Symbol::intern(&format!("growth_test_sym_{i}")))
            .collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("growth_test_sym_{i}"));
            assert_eq!(Symbol::intern(&format!("growth_test_sym_{i}")), *s);
        }
    }

    #[test]
    fn concurrent_interning_of_the_same_set_agrees_on_ids() {
        // N threads race to intern the same spellings in different
        // orders; everyone must end up with identical Symbol ids, and
        // the spellings must round-trip (no duplicate leaks winning).
        let names: Vec<String> = (0..512).map(|i| format!("race_same_{i}")).collect();
        let per_thread: Vec<Vec<Symbol>> = std::thread::scope(|scope| {
            (0..8usize)
                .map(|t| {
                    let names = &names;
                    scope.spawn(move || {
                        let mut out = vec![Symbol::intern("race_same_placeholder"); names.len()];
                        for k in 0..names.len() {
                            let i = (k + t * 67) % names.len();
                            out[i] = Symbol::intern(&names[i]);
                        }
                        out
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for got in &per_thread[1..] {
            assert_eq!(got, &per_thread[0]);
        }
        for (i, s) in per_thread[0].iter().enumerate() {
            assert_eq!(s.as_str(), names[i]);
        }
    }

    #[test]
    fn concurrent_interning_of_disjoint_sets_stays_disjoint() {
        let all: Vec<Symbol> = std::thread::scope(|scope| {
            (0..8usize)
                .map(|t| {
                    scope.spawn(move || {
                        (0..256)
                            .map(|i| Symbol::intern(&format!("race_disjoint_{t}_{i}")))
                            .collect::<Vec<Symbol>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut ids: Vec<Symbol> = all.clone();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "disjoint spellings got equal ids");
        // Re-interning after the race must not mint new ids.
        for s in &all {
            assert_eq!(Symbol::intern(s.as_str()), *s);
        }
    }
}
