//! Token kinds produced by the lexer.

use std::fmt;

use crate::symbol::Symbol;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier (variable or field name).
    Ident(Symbol),
    /// Integer literal.
    Int(i64),
    /// String literal (contents, unescaped).
    Str(String),

    // Keywords.
    Def,
    Let,
    In,
    If,
    Then,
    Else,
    When,

    // Punctuation and operators.
    /// `\` introducing a lambda.
    Lambda,
    /// `.` separating lambda binders from the body.
    Dot,
    /// `->`
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `#` followed directly by a field name: the selector `#N`.
    Hash,
    /// `@` — asymmetric record concatenation.
    At,
    /// `@@` — symmetric record concatenation.
    AtAt,
    /// `@{` with no intervening space — field update `@{N = e}`.
    AtBrace,
    /// `%` followed directly by a field name: field removal `%N`.
    Percent,
    /// `^{` with no intervening space — field renaming `^{M -> N}`.
    CaretBrace,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Str(_) => "string literal".to_owned(),
            TokenKind::Def => "`def`".to_owned(),
            TokenKind::Let => "`let`".to_owned(),
            TokenKind::In => "`in`".to_owned(),
            TokenKind::If => "`if`".to_owned(),
            TokenKind::Then => "`then`".to_owned(),
            TokenKind::Else => "`else`".to_owned(),
            TokenKind::When => "`when`".to_owned(),
            TokenKind::Lambda => "`\\`".to_owned(),
            TokenKind::Dot => "`.`".to_owned(),
            TokenKind::Arrow => "`->`".to_owned(),
            TokenKind::LParen => "`(`".to_owned(),
            TokenKind::RParen => "`)`".to_owned(),
            TokenKind::LBrace => "`{`".to_owned(),
            TokenKind::RBrace => "`}`".to_owned(),
            TokenKind::LBracket => "`[`".to_owned(),
            TokenKind::RBracket => "`]`".to_owned(),
            TokenKind::Comma => "`,`".to_owned(),
            TokenKind::Semi => "`;`".to_owned(),
            TokenKind::Eq => "`=`".to_owned(),
            TokenKind::EqEq => "`==`".to_owned(),
            TokenKind::Lt => "`<`".to_owned(),
            TokenKind::Le => "`<=`".to_owned(),
            TokenKind::Plus => "`+`".to_owned(),
            TokenKind::Minus => "`-`".to_owned(),
            TokenKind::Star => "`*`".to_owned(),
            TokenKind::AndAnd => "`&&`".to_owned(),
            TokenKind::OrOr => "`||`".to_owned(),
            TokenKind::Hash => "`#`".to_owned(),
            TokenKind::At => "`@`".to_owned(),
            TokenKind::AtAt => "`@@`".to_owned(),
            TokenKind::AtBrace => "`@{`".to_owned(),
            TokenKind::Percent => "`%`".to_owned(),
            TokenKind::CaretBrace => "`^{`".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: crate::span::Span,
}
