//! Runtime values: the universe `U` of the paper's concrete semantics.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use rowpoly_lang::{Expr, FieldName, Symbol};

/// Variable environments of the interpreter.
pub type Env = HashMap<Symbol, Value>;

/// A runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// String.
    Str(Rc<str>),
    /// List.
    List(Rc<Vec<Value>>),
    /// Record: field → value.
    Record(Rc<BTreeMap<FieldName, Value>>),
    /// User closure; `me` names the closure itself for recursion.
    Closure {
        /// Self-reference name for recursive bindings, if any.
        me: Option<Symbol>,
        /// Parameter.
        param: Symbol,
        /// Body.
        body: Rc<Expr>,
        /// Captured environment.
        env: Rc<Env>,
    },
    /// A built-in function, possibly partially applied.
    Prim(Prim, Vec<Value>),
}

/// Built-in functions (record operators and list primitives).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Prim {
    /// `#N`
    Select(FieldName),
    /// `@{N = v}` with the value already evaluated (arity 1 remaining).
    Update(FieldName),
    /// `%N`
    Remove(FieldName),
    /// `^{M -> N}`
    Rename(FieldName, FieldName),
    /// `null`
    Null,
    /// `head`
    Head,
    /// `tail`
    Tail,
    /// `cons`
    Cons,
}

impl Prim {
    /// Total number of arguments the primitive consumes.
    pub fn arity(self) -> usize {
        match self {
            Prim::Select(_) | Prim::Remove(_) | Prim::Rename(_, _) => 1,
            Prim::Update(_) => 2,
            Prim::Null | Prim::Head | Prim::Tail => 1,
            Prim::Cons => 2,
        }
    }
}

impl Value {
    /// Shallow description for error messages.
    pub fn describe(&self) -> &'static str {
        match self {
            Value::Int(_) => "an integer",
            Value::Str(_) => "a string",
            Value::List(_) => "a list",
            Value::Record(_) => "a record",
            Value::Closure { .. } | Value::Prim(..) => "a function",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Record(fields) => {
                write!(f, "{{")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} = {v}")?;
                }
                write!(f, "}}")
            }
            Value::Closure { .. } => write!(f, "<closure>"),
            Value::Prim(p, _) => write!(f, "<prim {p:?}>"),
        }
    }
}

/// The runtime error value `Ω`, distinguishing the field errors the type
/// system is meant to prevent from other stuck states.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// Access to a record field that does not exist — the error class the
    /// paper's inference detects (its `Ω` for Observation 1).
    MissingField(FieldName),
    /// A field was present in both operands of a symmetric concatenation.
    DuplicateField(FieldName),
    /// Renaming onto an already-present target field.
    RenameClash(FieldName),
    /// Dynamically ill-typed operation (applied a non-function, added a
    /// record to an integer, …).
    Stuck(String),
    /// Unbound variable.
    Unbound(Symbol),
    /// `head`/`tail` of an empty list (a partiality error, not a field
    /// error).
    EmptyList,
    /// Evaluation fuel exhausted (not an error value; the result is
    /// simply unknown).
    OutOfFuel,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::MissingField(n) => write!(f, "record has no field `{n}`"),
            RuntimeError::DuplicateField(n) => {
                write!(f, "field `{n}` present in both operands of `@@`")
            }
            RuntimeError::RenameClash(n) => {
                write!(f, "rename target `{n}` already present")
            }
            RuntimeError::Stuck(msg) => write!(f, "stuck: {msg}"),
            RuntimeError::Unbound(x) => write!(f, "unbound variable `{x}`"),
            RuntimeError::EmptyList => write!(f, "head/tail of empty list"),
            RuntimeError::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl RuntimeError {
    /// Whether this is the field-error class that the flow inference is
    /// designed to rule out (Observation 1's notion of going wrong).
    pub fn is_field_error(&self) -> bool {
        matches!(
            self,
            RuntimeError::MissingField(_)
                | RuntimeError::DuplicateField(_)
                | RuntimeError::RenameClash(_)
        )
    }
}
