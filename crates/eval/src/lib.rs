//! Concrete semantics for the record calculus.
//!
//! This crate implements the value universe `U` and the denotational
//! semantics `S⟦·⟧` that the paper's type inference is derived from
//! (Section 4.1), as an executable interpreter. It serves two purposes:
//!
//! * running the example programs;
//! * *testing* the inference's soundness and Observation 1: conditionals
//!   can be evaluated as non-deterministic choices ([`explore_paths`]),
//!   mirroring the collecting semantics `C1⟦·⟧` in which `if` is
//!   abstracted — a program is rejected by the optimal inference iff some
//!   such path runs into a missing record field.
//!
//! # Example
//!
//! ```
//! use rowpoly_eval::{eval, Value};
//! use rowpoly_lang::parse_expr;
//!
//! let e = parse_expr("#foo (@{foo = 42} {})")?;
//! assert!(matches!(eval(&e, 10_000), Ok(Value::Int(42))));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod interp;
#[cfg(test)]
mod tests_display;
mod value;

pub use interp::{eval, eval_program, explore_paths, PathSummary};
pub use value::{Env, Prim, RuntimeError, Value};
