//! Display/format tests for runtime values and errors.

use std::collections::BTreeMap;
use std::rc::Rc;

use rowpoly_lang::Symbol;

use crate::value::{Prim, RuntimeError, Value};

#[test]
fn scalar_display() {
    assert_eq!(Value::Int(42).to_string(), "42");
    assert_eq!(Value::Int(-7).to_string(), "-7");
    assert_eq!(Value::Str(Rc::from("hi")).to_string(), "\"hi\"");
}

#[test]
fn list_display_is_bracketed() {
    let v = Value::List(Rc::new(vec![Value::Int(1), Value::Int(2)]));
    assert_eq!(v.to_string(), "[1, 2]");
    assert_eq!(Value::List(Rc::new(vec![])).to_string(), "[]");
}

#[test]
fn record_display_sorted_by_field() {
    let mut m = BTreeMap::new();
    m.insert(Symbol::intern("zeta"), Value::Int(2));
    m.insert(Symbol::intern("alpha"), Value::Int(1));
    let v = Value::Record(Rc::new(m));
    assert_eq!(v.to_string(), "{alpha = 1, zeta = 2}");
}

#[test]
fn nested_record_display() {
    let mut inner = BTreeMap::new();
    inner.insert(Symbol::intern("x"), Value::Int(3));
    let mut outer = BTreeMap::new();
    outer.insert(Symbol::intern("p"), Value::Record(Rc::new(inner)));
    let v = Value::Record(Rc::new(outer));
    assert_eq!(v.to_string(), "{p = {x = 3}}");
}

#[test]
fn function_values_are_opaque_but_nonempty() {
    let prim = Value::Prim(Prim::Head, Vec::new());
    assert!(!prim.to_string().is_empty());
    assert_eq!(prim.describe(), "a function");
}

#[test]
fn describe_covers_all_shapes() {
    assert_eq!(Value::Int(0).describe(), "an integer");
    assert_eq!(Value::Str(Rc::from("")).describe(), "a string");
    assert_eq!(Value::List(Rc::new(vec![])).describe(), "a list");
    assert_eq!(
        Value::Record(Rc::new(BTreeMap::new())).describe(),
        "a record"
    );
}

#[test]
fn runtime_error_messages_name_the_field() {
    let e = RuntimeError::MissingField(Symbol::intern("foo"));
    assert!(e.to_string().contains("`foo`"));
    assert!(e.is_field_error());
    let e = RuntimeError::DuplicateField(Symbol::intern("bar"));
    assert!(e.to_string().contains("`bar`"));
    assert!(e.is_field_error());
    assert!(!RuntimeError::OutOfFuel.is_field_error());
    assert!(!RuntimeError::EmptyList.is_field_error());
    assert!(!RuntimeError::Stuck("x".into()).is_field_error());
}

#[test]
fn prim_arities() {
    assert_eq!(Prim::Select(Symbol::intern("a")).arity(), 1);
    assert_eq!(Prim::Update(Symbol::intern("a")).arity(), 2);
    assert_eq!(
        Prim::Rename(Symbol::intern("a"), Symbol::intern("b")).arity(),
        1
    );
    assert_eq!(Prim::Cons.arity(), 2);
    assert_eq!(Prim::Null.arity(), 1);
}
