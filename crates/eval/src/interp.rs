//! The interpreter: concrete (deterministic) evaluation and the
//! path-exploring evaluation that mirrors the paper's abstraction of
//! conditionals to non-deterministic choice.

use std::collections::BTreeMap;
use std::rc::Rc;

use rowpoly_lang::{BinOp, Expr, ExprKind, Program, Symbol};

use crate::value::{Env, Prim, RuntimeError, Value};

/// How conditionals are evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BranchMode {
    /// Evaluate the condition and take the chosen branch.
    Concrete,
    /// Ignore the condition; take the branch selected by the oracle bits.
    Oracle,
}

/// Evaluates an expression with the standard semantics.
///
/// `fuel` bounds the number of evaluation steps; exhaustion yields
/// [`RuntimeError::OutOfFuel`] (an unknown result, not a type error).
/// Free variables evaluate to [`RuntimeError::Unbound`].
pub fn eval(expr: &Expr, fuel: u64) -> Result<Value, RuntimeError> {
    let mut interp = Interp {
        fuel,
        mode: BranchMode::Concrete,
        oracle: 0,
        oracle_used: 0,
    };
    interp.eval(&builtin_env(), expr)
}

/// Evaluates a whole program (the nested-`let` expansion of its `def`s).
pub fn eval_program(program: &Program, fuel: u64) -> Result<Value, RuntimeError> {
    eval(&program.to_expr(), fuel)
}

/// Outcome of exploring all branch choices.
#[derive(Clone, Debug, Default)]
pub struct PathSummary {
    /// Paths that produced a value.
    pub ok: usize,
    /// Paths that hit a field error (missing field, duplicate field,
    /// rename clash) — the paper's `Ω`.
    pub field_errors: usize,
    /// Paths that got stuck for any other reason (dynamic type error,
    /// unbound variable, empty list).
    pub other_errors: usize,
    /// Paths that ran out of fuel (unknown outcome).
    pub unknown: usize,
}

impl PathSummary {
    /// Whether some fully-explored path hit a field error.
    pub fn any_field_error(&self) -> bool {
        self.field_errors > 0
    }
}

/// Explores every combination of conditional-branch choices, mirroring
/// the collecting semantics `C1⟦·⟧` in which `if` is a non-deterministic
/// choice (Section 4.1). Exploration is bounded by `max_paths` oracle
/// assignments and `fuel` steps per path.
///
/// `when`-conditionals stay concrete: Fig. 8's rule retains the tested
/// information, so the abstraction only forgets `if` conditions.
pub fn explore_paths(expr: &Expr, fuel: u64, max_paths: u32) -> PathSummary {
    let env = builtin_env();
    let mut summary = PathSummary::default();
    let mut oracle: u64 = 0;
    let mut width = 0u32;
    loop {
        let mut interp = Interp {
            fuel,
            mode: BranchMode::Oracle,
            oracle,
            oracle_used: 0,
        };
        match interp.eval(&env, expr) {
            Ok(_) => summary.ok += 1,
            Err(RuntimeError::OutOfFuel) => summary.unknown += 1,
            Err(e) if e.is_field_error() => summary.field_errors += 1,
            Err(_) => summary.other_errors += 1,
        }
        width = width.max(interp.oracle_used.min(63) as u32);
        // Enumerate oracle bit strings of the observed width.
        oracle += 1;
        if width >= 63 || oracle >= (1u64 << width) || oracle >= max_paths as u64 {
            return summary;
        }
    }
}

struct Interp {
    fuel: u64,
    mode: BranchMode,
    /// Bit string selecting branches in oracle mode (bit i = i-th `if`
    /// encountered takes the then-branch).
    oracle: u64,
    oracle_used: u64,
}

impl Interp {
    fn tick(&mut self) -> Result<(), RuntimeError> {
        if self.fuel == 0 {
            return Err(RuntimeError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn eval(&mut self, env: &Env, e: &Expr) -> Result<Value, RuntimeError> {
        self.tick()?;
        match &e.kind {
            ExprKind::Var(x) => env.get(x).cloned().ok_or(RuntimeError::Unbound(*x)),
            ExprKind::Int(n) => Ok(Value::Int(*n)),
            ExprKind::Str(s) => Ok(Value::Str(Rc::from(s.as_str()))),
            ExprKind::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(env, item)?);
                }
                Ok(Value::List(Rc::new(out)))
            }
            ExprKind::Lam(x, body) => Ok(Value::Closure {
                me: None,
                param: *x,
                body: Rc::new((**body).clone()),
                env: Rc::new(env.clone()),
            }),
            ExprKind::App(f, a) => {
                let fv = self.eval(env, f)?;
                let av = self.eval(env, a)?;
                self.apply(fv, av)
            }
            ExprKind::Let { name, bound, body } => {
                let recursive = bound.free_vars().contains(name);
                let bv = if recursive {
                    match &bound.kind {
                        ExprKind::Lam(param, lam_body) => Value::Closure {
                            me: Some(*name),
                            param: *param,
                            body: Rc::new((**lam_body).clone()),
                            env: Rc::new(env.clone()),
                        },
                        _ => {
                            return Err(RuntimeError::Stuck(format!(
                                "recursive non-function binding `{name}`"
                            )))
                        }
                    }
                } else {
                    self.eval(env, bound)?
                };
                let mut inner = env.clone();
                inner.insert(*name, bv);
                self.eval(&inner, body)
            }
            ExprKind::If(c, t, f) => {
                let take_then = match self.mode {
                    BranchMode::Concrete => match self.eval(env, c)? {
                        Value::Int(n) => n != 0,
                        other => {
                            return Err(RuntimeError::Stuck(format!(
                                "condition is {}, expected an integer",
                                other.describe()
                            )))
                        }
                    },
                    BranchMode::Oracle => {
                        let bit = if self.oracle_used < 63 {
                            self.oracle >> self.oracle_used & 1 == 1
                        } else {
                            false
                        };
                        self.oracle_used += 1;
                        bit
                    }
                };
                if take_then {
                    self.eval(env, t)
                } else {
                    self.eval(env, f)
                }
            }
            ExprKind::Empty => Ok(Value::Record(Rc::new(BTreeMap::new()))),
            ExprKind::Select(n) => Ok(Value::Prim(Prim::Select(*n), Vec::new())),
            ExprKind::Update(n, value) => {
                let v = self.eval(env, value)?;
                Ok(Value::Prim(Prim::Update(*n), vec![v]))
            }
            ExprKind::Remove(n) => Ok(Value::Prim(Prim::Remove(*n), Vec::new())),
            ExprKind::Rename(m, n) => Ok(Value::Prim(Prim::Rename(*m, *n), Vec::new())),
            ExprKind::Concat(a, b) => {
                let (ra, rb) = (self.eval(env, a)?, self.eval(env, b)?);
                let (ra, rb) = (as_record(&ra)?, as_record(&rb)?);
                // Right-biased union.
                let mut out = (*ra).clone();
                for (k, v) in rb.iter() {
                    out.insert(*k, v.clone());
                }
                Ok(Value::Record(Rc::new(out)))
            }
            ExprKind::SymConcat(a, b) => {
                let (ra, rb) = (self.eval(env, a)?, self.eval(env, b)?);
                let (ra, rb) = (as_record(&ra)?, as_record(&rb)?);
                let mut out = (*ra).clone();
                for (k, v) in rb.iter() {
                    if out.insert(*k, v.clone()).is_some() {
                        return Err(RuntimeError::DuplicateField(*k));
                    }
                }
                Ok(Value::Record(Rc::new(out)))
            }
            ExprKind::When {
                field,
                subject,
                then_branch,
                else_branch,
            } => {
                let v = env
                    .get(subject)
                    .cloned()
                    .ok_or(RuntimeError::Unbound(*subject))?;
                let rec = as_record(&v)?;
                if rec.contains_key(field) {
                    self.eval(env, then_branch)
                } else {
                    self.eval(env, else_branch)
                }
            }
            ExprKind::BinOp(op, a, b) => {
                let av = self.eval(env, a)?;
                let bv = self.eval(env, b)?;
                let (x, y) = match (&av, &bv) {
                    (Value::Int(x), Value::Int(y)) => (*x, *y),
                    _ => {
                        return Err(RuntimeError::Stuck(format!(
                            "`{}` applied to {} and {}",
                            op.symbol(),
                            av.describe(),
                            bv.describe()
                        )))
                    }
                };
                Ok(Value::Int(match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Eq => (x == y) as i64,
                    BinOp::Lt => (x < y) as i64,
                    BinOp::Le => (x <= y) as i64,
                    BinOp::And => (x != 0 && y != 0) as i64,
                    BinOp::Or => (x != 0 || y != 0) as i64,
                }))
            }
        }
    }

    fn apply(&mut self, f: Value, a: Value) -> Result<Value, RuntimeError> {
        self.tick()?;
        match f {
            Value::Closure {
                me,
                param,
                body,
                env,
            } => {
                let mut inner = (*env).clone();
                if let Some(name) = me {
                    inner.insert(
                        name,
                        Value::Closure {
                            me: Some(name),
                            param,
                            body: Rc::clone(&body),
                            env: Rc::clone(&env),
                        },
                    );
                }
                inner.insert(param, a);
                self.eval(&inner, &body)
            }
            Value::Prim(p, mut args) => {
                args.push(a);
                if args.len() < p.arity() {
                    return Ok(Value::Prim(p, args));
                }
                self.prim(p, args)
            }
            other => Err(RuntimeError::Stuck(format!(
                "applied {}, expected a function",
                other.describe()
            ))),
        }
    }

    fn prim(&mut self, p: Prim, args: Vec<Value>) -> Result<Value, RuntimeError> {
        match p {
            Prim::Select(n) => {
                let rec = as_record(&args[0])?;
                rec.get(&n).cloned().ok_or(RuntimeError::MissingField(n))
            }
            Prim::Update(n) => {
                let rec = as_record(&args[1])?;
                let mut out = (*rec).clone();
                out.insert(n, args[0].clone());
                Ok(Value::Record(Rc::new(out)))
            }
            Prim::Remove(n) => {
                let rec = as_record(&args[0])?;
                let mut out = (*rec).clone();
                out.remove(&n);
                Ok(Value::Record(Rc::new(out)))
            }
            Prim::Rename(m, n) => {
                let rec = as_record(&args[0])?;
                let mut out = (*rec).clone();
                if let Some(v) = out.remove(&m) {
                    if out.contains_key(&n) {
                        return Err(RuntimeError::RenameClash(n));
                    }
                    out.insert(n, v);
                }
                Ok(Value::Record(Rc::new(out)))
            }
            Prim::Null => {
                let l = as_list(&args[0])?;
                Ok(Value::Int(l.is_empty() as i64))
            }
            Prim::Head => {
                let l = as_list(&args[0])?;
                l.first().cloned().ok_or(RuntimeError::EmptyList)
            }
            Prim::Tail => {
                let l = as_list(&args[0])?;
                if l.is_empty() {
                    return Err(RuntimeError::EmptyList);
                }
                Ok(Value::List(Rc::new(l[1..].to_vec())))
            }
            Prim::Cons => {
                let l = as_list(&args[1])?;
                let mut out = Vec::with_capacity(l.len() + 1);
                out.push(args[0].clone());
                out.extend(l.iter().cloned());
                Ok(Value::List(Rc::new(out)))
            }
        }
    }
}

fn as_record(v: &Value) -> Result<Rc<BTreeMap<rowpoly_lang::FieldName, Value>>, RuntimeError> {
    match v {
        Value::Record(r) => Ok(Rc::clone(r)),
        other => Err(RuntimeError::Stuck(format!(
            "expected a record, got {}",
            other.describe()
        ))),
    }
}

fn as_list(v: &Value) -> Result<Rc<Vec<Value>>, RuntimeError> {
    match v {
        Value::List(l) => Ok(Rc::clone(l)),
        other => Err(RuntimeError::Stuck(format!(
            "expected a list, got {}",
            other.describe()
        ))),
    }
}

/// The interpreter's initial environment: list primitives.
fn builtin_env() -> Env {
    let mut env = Env::new();
    env.insert(Symbol::intern("null"), Value::Prim(Prim::Null, Vec::new()));
    env.insert(Symbol::intern("head"), Value::Prim(Prim::Head, Vec::new()));
    env.insert(Symbol::intern("tail"), Value::Prim(Prim::Tail, Vec::new()));
    env.insert(Symbol::intern("cons"), Value::Prim(Prim::Cons, Vec::new()));
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_lang::parse_expr;

    fn run(src: &str) -> Result<Value, RuntimeError> {
        eval(&parse_expr(src).expect("parses"), 100_000)
    }

    #[test]
    fn arithmetic_and_conditionals() {
        assert!(matches!(run("1 + 2 * 3"), Ok(Value::Int(7))));
        assert!(matches!(run("if 1 then 10 else 20"), Ok(Value::Int(10))));
        assert!(matches!(run("if 0 then 10 else 20"), Ok(Value::Int(20))));
        assert!(matches!(run("3 < 4"), Ok(Value::Int(1))));
    }

    #[test]
    fn records_update_select() {
        assert!(matches!(run("#foo (@{foo = 42} {})"), Ok(Value::Int(42))));
        assert!(matches!(run("#bar {}"), Err(RuntimeError::MissingField(_))));
        assert!(matches!(
            run("#a (%a {a = 1})"),
            Err(RuntimeError::MissingField(_))
        ));
        assert!(matches!(run("#b (^{a -> b} {a = 7})"), Ok(Value::Int(7))));
    }

    #[test]
    fn concat_bias_and_symmetry() {
        assert!(matches!(run("#x ({x = 1} @ {x = 2})"), Ok(Value::Int(2))));
        assert!(matches!(run("#x ({x = 1} @ {y = 2})"), Ok(Value::Int(1))));
        assert!(matches!(
            run("{x = 1} @@ {x = 2}"),
            Err(RuntimeError::DuplicateField(_))
        ));
        assert!(matches!(run("#y ({x = 1} @@ {y = 2})"), Ok(Value::Int(2))));
    }

    #[test]
    fn when_tests_field_presence() {
        assert!(matches!(
            run("let r = {a = 1} in when a in r then #a r else 0"),
            Ok(Value::Int(1))
        ));
        assert!(matches!(
            run("let r = {} in when a in r then #a r else 7"),
            Ok(Value::Int(7))
        ));
    }

    #[test]
    fn recursion_and_fuel() {
        assert!(matches!(
            run("let fact n = if n == 0 then 1 else n * fact (n - 1) in fact 5"),
            Ok(Value::Int(120))
        ));
        // Keep the fuel small: the interpreter is recursive, so fuel also
        // bounds native stack depth.
        let e = parse_expr("let loop x = loop x in loop 1").unwrap();
        assert!(matches!(eval(&e, 300), Err(RuntimeError::OutOfFuel)));
    }

    #[test]
    fn list_primitives() {
        assert!(matches!(run("null []"), Ok(Value::Int(1))));
        assert!(matches!(run("null [1]"), Ok(Value::Int(0))));
        assert!(matches!(run("head [4, 5]"), Ok(Value::Int(4))));
        assert!(matches!(run("head (tail [4, 5])"), Ok(Value::Int(5))));
        assert!(matches!(run("head (cons 9 [])"), Ok(Value::Int(9))));
        assert!(matches!(run("head []"), Err(RuntimeError::EmptyList)));
    }

    #[test]
    fn dynamic_type_errors_are_stuck() {
        assert!(matches!(run("1 + {}"), Err(RuntimeError::Stuck(_))));
        assert!(matches!(run("1 2"), Err(RuntimeError::Stuck(_))));
        assert!(matches!(
            run("if {} then 1 else 2"),
            Err(RuntimeError::Stuck(_))
        ));
    }

    /// The motivating example: `f {}` is safe on *every* path (the
    /// then-branch adds `foo` before selecting it), but `#foo (f {})` has
    /// a failing path — the else-path returns `{}` to the outer selector.
    /// This is exactly the accept/reject split of the flow inference.
    #[test]
    fn motivating_example_paths() {
        // `c` is free — concrete evaluation cannot run it, but the oracle
        // mode never evaluates conditions.
        let safe = parse_expr(
            r"let f = \s . if c then (let s2 = @{foo = 1} s in
                                      let v = #foo s2 in s2) else s
              in f {}",
        )
        .unwrap();
        let summary = explore_paths(&safe, 100_000, 64);
        assert!(summary.ok > 0);
        assert_eq!(summary.field_errors, 0, "f {{}} is safe on both paths");

        let bad = parse_expr(
            r"let f = \s . if c then (let s2 = @{foo = 1} s in
                                      let v = #foo s2 in s2) else s
              in #foo (f {})",
        )
        .unwrap();
        let summary = explore_paths(&bad, 100_000, 64);
        assert!(summary.ok > 0, "the then-path succeeds");
        assert!(
            summary.any_field_error(),
            "the else-path returns {{}} to the outer selector: got {summary:?}"
        );
    }

    #[test]
    fn closures_capture_lexically() {
        assert!(matches!(
            run("let x = 1 in let f = \\y . x + y in let x = 100 in f 10"),
            Ok(Value::Int(11))
        ));
    }
}
