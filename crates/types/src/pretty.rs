//! Human-readable rendering of types.

use std::collections::HashMap;
use std::fmt::Write;

use rowpoly_boolfun::Flag;

use crate::env::Scheme;
use crate::ty::{RowTail, Ty, Var, NO_FLAG};

/// Renders a type with canonical names: type variables become `a, b, c, …`
/// in first-occurrence order and flags become `f1, f2, …`.
///
/// With `show_flags = false` the `P`-skeleton view is printed (as in the
/// inference without field tracking); with `true`, fields print as
/// `N.f1 : t` and variables as `a.f2`.
pub fn render_ty(t: &Ty, show_flags: bool) -> String {
    let mut r = Renderer::new(show_flags);
    let mut out = String::new();
    r.ty(t, false, &mut out);
    out
}

/// Renders a scheme, prefixing `∀` quantifiers when present.
pub fn render_scheme(s: &Scheme, show_flags: bool) -> String {
    let mut r = Renderer::new(show_flags);
    // Pre-seed quantified variables so they get the first letters.
    for v in &s.vars {
        r.var_name(*v);
    }
    let mut body = String::new();
    r.ty(&s.ty, false, &mut body);
    if s.vars.is_empty() {
        body
    } else {
        let names: Vec<String> = s.vars.iter().map(|v| r.var_name(*v)).collect();
        format!("forall {} . {}", names.join(" "), body)
    }
}

/// Renders a scheme together with its stored flow, in the paper's
/// `type | flow` style — e.g. the introduction's
/// `{foo.f1 : Int, a.f2} -> {foo.f3 : Int, a.f4} | f3 -> f1, f4 -> f2`.
/// Flags are named consistently between the type and the flow; flow
/// clauses mentioning flags outside the type (none, for finished
/// top-level definitions) would show raw indices.
pub fn render_scheme_with_flow(s: &Scheme) -> String {
    let mut r = Renderer::new(true);
    for v in &s.vars {
        r.var_name(*v);
    }
    let mut body = String::new();
    r.ty(&s.ty, false, &mut body);
    let quantified = if s.vars.is_empty() {
        body
    } else {
        let names: Vec<String> = s.vars.iter().map(|v| r.var_name(*v)).collect();
        format!("forall {} . {}", names.join(" "), body)
    };
    if s.flow.is_empty() {
        return quantified;
    }
    let mut clauses: Vec<String> = Vec::new();
    for c in s.flow.clauses() {
        clauses.push(r.clause(c));
    }
    format!("{quantified} | {}", clauses.join(", "))
}

struct Renderer {
    show_flags: bool,
    vars: HashMap<Var, String>,
    flags: HashMap<Flag, String>,
}

impl Renderer {
    fn new(show_flags: bool) -> Renderer {
        Renderer {
            show_flags,
            vars: HashMap::new(),
            flags: HashMap::new(),
        }
    }

    fn var_name(&mut self, v: Var) -> String {
        let n = self.vars.len();
        self.vars
            .entry(v)
            .or_insert_with(|| {
                // a, b, …, z, a1, b1, …
                let letter = (b'a' + (n % 26) as u8) as char;
                let suffix = n / 26;
                if suffix == 0 {
                    letter.to_string()
                } else {
                    format!("{letter}{suffix}")
                }
            })
            .clone()
    }

    fn flag_name(&mut self, f: Flag) -> String {
        let n = self.flags.len() + 1;
        self.flags
            .entry(f)
            .or_insert_with(|| format!("f{n}"))
            .clone()
    }

    fn ty(&mut self, t: &Ty, atom: bool, out: &mut String) {
        match t {
            Ty::Var(v, f) => {
                let name = self.var_name(*v);
                out.push_str(&name);
                self.flag_suffix(*f, out);
            }
            Ty::Int => out.push_str("Int"),
            Ty::Str => out.push_str("Str"),
            Ty::List(inner) => {
                out.push('[');
                self.ty(inner, false, out);
                out.push(']');
            }
            Ty::Fun(a, b) => {
                if atom {
                    out.push('(');
                }
                self.ty(a, true, out);
                out.push_str(" -> ");
                self.ty(b, false, out);
                if atom {
                    out.push(')');
                }
            }
            Ty::Record(row) => {
                out.push('{');
                let mut first = true;
                for fe in &row.fields {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    write!(out, "{}", fe.name).expect("write to string");
                    self.flag_suffix(fe.flag, out);
                    out.push_str(" : ");
                    self.ty(&fe.ty, false, out);
                }
                match row.tail {
                    RowTail::Closed => {}
                    RowTail::Var(v, f) => {
                        if !first {
                            out.push_str(", ");
                        }
                        let name = self.var_name(v);
                        out.push_str(&name);
                        self.flag_suffix(f, out);
                    }
                }
                out.push('}');
            }
        }
    }

    /// Renders a flow clause with the same flag names as the type.
    /// Implications `¬a ∨ b` print as `a -> b`; other clauses print as
    /// disjunctions.
    fn clause(&mut self, c: &rowpoly_boolfun::Clause) -> String {
        let lits = c.lits();
        let lit = |r: &mut Renderer, l: rowpoly_boolfun::Lit| {
            let name = r.flag_name(l.flag());
            if l.is_neg() {
                format!("!{name}")
            } else {
                name
            }
        };
        match lits {
            [l] => lit(self, *l),
            [a, b] if a.is_neg() != b.is_neg() => {
                // Exactly one negative literal: print as an implication.
                let (neg, pos) = if a.is_neg() { (*a, *b) } else { (*b, *a) };
                let from = self.flag_name(neg.flag());
                let to = self.flag_name(pos.flag());
                format!("{from} -> {to}")
            }
            _ => {
                let parts: Vec<String> = lits.iter().map(|&l| lit(self, l)).collect();
                parts.join(" | ")
            }
        }
    }

    fn flag_suffix(&mut self, f: Flag, out: &mut String) {
        if self.show_flags && f != NO_FLAG {
            let name = self.flag_name(f);
            out.push('.');
            out.push_str(&name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::FieldEntry;
    use rowpoly_lang::Symbol;

    #[test]
    fn skeleton_rendering() {
        let t = Ty::fun(
            Ty::svar(Var(3)),
            Ty::fun(Ty::svar(Var(9)), Ty::svar(Var(3))),
        );
        assert_eq!(render_ty(&t, false), "a -> b -> a");
    }

    #[test]
    fn function_argument_is_parenthesised() {
        let t = Ty::fun(Ty::fun(Ty::Int, Ty::Int), Ty::Str);
        assert_eq!(render_ty(&t, false), "(Int -> Int) -> Str");
    }

    #[test]
    fn record_with_flags() {
        let t = Ty::record(
            vec![FieldEntry {
                name: Symbol::intern("foo"),
                flag: Flag(10),
                ty: Ty::Int,
            }],
            RowTail::Var(Var(0), Flag(11)),
        );
        assert_eq!(render_ty(&t, true), "{foo.f1 : Int, a.f2}");
        assert_eq!(render_ty(&t, false), "{foo : Int, a}");
    }

    #[test]
    fn scheme_rendering() {
        let s = Scheme::new(vec![Var(5)], Ty::fun(Ty::svar(Var(5)), Ty::svar(Var(5))));
        assert_eq!(render_scheme(&s, false), "forall a . a -> a");
    }

    #[test]
    fn scheme_with_flow_rendering() {
        use rowpoly_boolfun::{Cnf, Flag as BFlag, Lit};
        let mut flow = Cnf::top();
        flow.imply(Lit::pos(BFlag(12)), Lit::pos(BFlag(10)));
        flow.assert_lit(Lit::pos(BFlag(11)));
        flow.normalize();
        let s = Scheme {
            vars: vec![Var(3)],
            ty: Ty::fun(Ty::var(Var(3), Flag(10)), Ty::var(Var(3), Flag(12))),
            flow,
        };
        let rendered = render_scheme_with_flow(&s);
        assert_eq!(rendered, "forall a . a.f1 -> a.f2 | f2 -> f1, f3");
    }

    #[test]
    fn lists_and_closed_records() {
        let t = Ty::list(Ty::record(vec![], RowTail::Closed));
        assert_eq!(render_ty(&t, false), "[{}]");
    }
}
