//! The flag-sequence extraction `*t+` (Definition 1 of the paper).

use rowpoly_boolfun::Lit;

use crate::ty::{Row, RowTail, Ty, NO_FLAG};

/// Extracts the sequence of flag atoms of a type, with contra-variant
/// polarity (Definition 1):
///
/// ```text
/// *a.fa+                        = ⟨fa⟩
/// *t1 → t2+                     = ¬*t1+ · *t2+
/// *Int+                         = ⟨⟩
/// *[t]+                         = *t+
/// *{N1.f1 : t1, …, a.fa}+       = ⟨f1, …, fn, fa⟩ · *t1+ ··· *tn+
/// ```
///
/// where `¬⟨l1,…,ln⟩` negates every atom. Sequence (bi-)implications
/// between two types with equal `⇓RP`-skeletons relate these sequences
/// position-wise; the polarity encodes the contra-variance of function
/// arguments (see Example 2 of the paper).
///
/// # Panics
///
/// Panics in debug builds if the term contains a `NO_FLAG` sentinel —
/// `*t+` is only meaningful on fully decorated `PR` terms.
pub fn flag_lits(t: &Ty) -> Vec<Lit> {
    let mut out = Vec::new();
    collect(t, false, &mut out);
    out
}

/// `*·+` of a row *suffix*: the sequence a row variable's flags expand to
/// when the variable is substituted by `row` (fields + tail first, then
/// the field types). Used by `applyS` for row substitutions.
pub fn row_suffix_lits(row: &Row) -> Vec<Lit> {
    let mut out = Vec::new();
    collect_row(row, false, &mut out);
    out
}

fn collect(t: &Ty, neg: bool, out: &mut Vec<Lit>) {
    match t {
        Ty::Var(_, f) => {
            debug_assert_ne!(*f, NO_FLAG, "flag extraction on a skeleton");
            out.push(Lit::new(*f, neg));
        }
        Ty::Int | Ty::Str => {}
        Ty::List(t) => collect(t, neg, out),
        Ty::Fun(a, b) => {
            // Arguments are contra-variant: all their atoms are negated on
            // top of the current polarity.
            collect(a, !neg, out);
            collect(b, neg, out);
        }
        Ty::Record(row) => collect_row(row, neg, out),
    }
}

fn collect_row(row: &Row, neg: bool, out: &mut Vec<Lit>) {
    for f in &row.fields {
        debug_assert_ne!(f.flag, NO_FLAG, "flag extraction on a skeleton");
        out.push(Lit::new(f.flag, neg));
    }
    if let RowTail::Var(_, f) = row.tail {
        debug_assert_ne!(f, NO_FLAG, "flag extraction on a skeleton");
        out.push(Lit::new(f, neg));
    }
    for f in &row.fields {
        collect(&f.ty, neg, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::{FieldEntry, Var};
    use rowpoly_boolfun::Flag;
    use rowpoly_lang::Symbol;

    #[test]
    fn variable_is_single_positive_atom() {
        let t = Ty::var(Var(0), Flag(7));
        assert_eq!(flag_lits(&t), vec![Lit::pos(Flag(7))]);
    }

    #[test]
    fn function_negates_argument() {
        // *a.f1 → a.f2+ = ⟨¬f1, f2⟩ (Example 3's *ti+).
        let t = Ty::fun(Ty::var(Var(0), Flag(1)), Ty::var(Var(0), Flag(2)));
        assert_eq!(flag_lits(&t), vec![Lit::neg(Flag(1)), Lit::pos(Flag(2))]);
    }

    #[test]
    fn double_negation_in_nested_arguments() {
        // *(a.f1 → a.f2) → a.f3+ = ⟨¬¬f1, ¬f2, f3⟩ = ⟨f1, ¬f2, f3⟩.
        let inner = Ty::fun(Ty::var(Var(0), Flag(1)), Ty::var(Var(0), Flag(2)));
        let t = Ty::fun(inner, Ty::var(Var(0), Flag(3)));
        assert_eq!(
            flag_lits(&t),
            vec![Lit::pos(Flag(1)), Lit::neg(Flag(2)), Lit::pos(Flag(3))]
        );
    }

    #[test]
    fn record_order_is_flags_then_field_types() {
        // *{N.f1 : a.f3, b.f2}+ = ⟨f1, f2, f3⟩.
        let t = Ty::record(
            vec![FieldEntry {
                name: Symbol::intern("n"),
                flag: Flag(1),
                ty: Ty::var(Var(0), Flag(3)),
            }],
            crate::ty::RowTail::Var(Var(1), Flag(2)),
        );
        assert_eq!(
            flag_lits(&t),
            vec![Lit::pos(Flag(1)), Lit::pos(Flag(2)), Lit::pos(Flag(3))]
        );
    }

    #[test]
    fn example_2_alignment() {
        // to = (a.f1 → a.f2) → (a.f3 → a.f4):
        // *to+ = ⟨f1, ¬f2, ¬f3, f4⟩ (note ¬¬f1 = f1).
        let to = Ty::fun(
            Ty::fun(Ty::var(Var(0), Flag(1)), Ty::var(Var(0), Flag(2))),
            Ty::fun(Ty::var(Var(0), Flag(3)), Ty::var(Var(0), Flag(4))),
        );
        assert_eq!(
            flag_lits(&to),
            vec![
                Lit::pos(Flag(1)),
                Lit::neg(Flag(2)),
                Lit::neg(Flag(3)),
                Lit::pos(Flag(4))
            ]
        );
    }

    #[test]
    fn lists_are_transparent() {
        let t = Ty::list(Ty::var(Var(0), Flag(5)));
        assert_eq!(flag_lits(&t), vec![Lit::pos(Flag(5))]);
    }

    #[test]
    fn base_types_contribute_nothing() {
        assert!(flag_lits(&Ty::Int).is_empty());
        assert!(flag_lits(&Ty::fun(Ty::Int, Ty::Str)).is_empty());
    }
}
