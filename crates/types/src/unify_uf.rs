//! An alternative unifier backend: binding maps resolved on demand
//! ("union-find" style) instead of eagerly composed substitutions.
//!
//! [`crate::mgu`] keeps its substitution idempotent by applying every new
//! binding to all existing right-hand sides — simple, and faithful to the
//! paper's explicit-substitution presentation, but quadratic in pathological
//! cases. This module computes the same most general unifiers by storing
//! raw bindings and chasing them lazily, resolving to an idempotent
//! [`Subst`] once at the end. The two backends are checked equivalent by
//! property tests and selectable via the inference options for the
//! substitution-cost ablation (the paper's Section 6 observes that
//! "applying substitutions is equally expensive" as SAT solving).

use std::collections::{BTreeSet, HashMap};

use rowpoly_lang::FieldName;

use crate::subst::Subst;
use crate::ty::{FieldEntry, Row, RowTail, Ty, Var, VarAlloc, NO_FLAG};
use crate::unify::UnifyError;

/// Computes the most general unifier of a set of equations with the
/// lazy-binding backend. Produces the same results as [`crate::mgu`]
/// (up to variable naming).
pub fn mgu_uf(
    pairs: impl IntoIterator<Item = (Ty, Ty)>,
    vars: &mut VarAlloc,
) -> Result<Subst, UnifyError> {
    let mut u = UfUnifier::default();
    let work: Vec<(Ty, Ty)> = pairs.into_iter().collect();
    for (a, b) in &work {
        u.collect_lacks(a);
        u.collect_lacks(b);
    }
    for (a, b) in work {
        u.unify(&a, &b, vars)?;
    }
    u.export()
}

#[derive(Default)]
struct UfUnifier {
    ty_bind: HashMap<Var, Ty>,
    row_bind: HashMap<Var, Row>,
    lacks: HashMap<Var, BTreeSet<FieldName>>,
}

impl UfUnifier {
    fn collect_lacks(&mut self, t: &Ty) {
        match t {
            Ty::Var(..) | Ty::Int | Ty::Str => {}
            Ty::List(inner) => self.collect_lacks(inner),
            Ty::Fun(a, b) => {
                self.collect_lacks(a);
                self.collect_lacks(b);
            }
            Ty::Record(row) => {
                if let RowTail::Var(v, _) = row.tail {
                    self.lacks
                        .entry(v)
                        .or_default()
                        .extend(row.fields.iter().map(|f| f.name));
                }
                for f in &row.fields {
                    self.collect_lacks(&f.ty);
                }
            }
        }
    }

    /// Chases type-variable bindings at the head only.
    fn head<'a>(&'a self, mut t: &'a Ty) -> &'a Ty {
        while let Ty::Var(v, _) = t {
            match self.ty_bind.get(v) {
                Some(b) => t = b,
                None => break,
            }
        }
        t
    }

    /// Resolves a row's tail chain, accumulating spliced fields.
    fn resolve_row(&self, row: &Row) -> Row {
        let mut fields = row.fields.clone();
        let mut tail = row.tail.clone();
        while let RowTail::Var(v, _) = tail {
            match self.row_bind.get(&v) {
                Some(suffix) => {
                    fields.extend(suffix.fields.iter().cloned());
                    tail = suffix.tail.clone();
                }
                None => break,
            }
        }
        fields.sort_by_key(|f| f.name);
        Row { fields, tail }
    }

    /// Occurs check through the binding maps.
    fn occurs(&self, v: Var, t: &Ty) -> bool {
        match self.head(t) {
            Ty::Var(w, _) => *w == v,
            Ty::Int | Ty::Str => false,
            Ty::List(inner) => self.occurs(v, inner),
            Ty::Fun(a, b) => self.occurs(v, a) || self.occurs(v, b),
            Ty::Record(row) => {
                let row = self.resolve_row(row);
                row.fields.iter().any(|f| self.occurs(v, &f.ty))
                    || matches!(row.tail, RowTail::Var(w, _) if w == v)
            }
        }
    }

    fn unify(&mut self, a: &Ty, b: &Ty, vars: &mut VarAlloc) -> Result<(), UnifyError> {
        let a = self.head(a).clone();
        let b = self.head(b).clone();
        match (a, b) {
            (Ty::Var(x, _), Ty::Var(y, _)) if x == y => Ok(()),
            (Ty::Var(x, _), t) | (t, Ty::Var(x, _)) => {
                if self.occurs(x, &t) {
                    return Err(UnifyError::Occurs { var: x, ty: t });
                }
                self.ty_bind.insert(x, t.strip());
                Ok(())
            }
            (Ty::Int, Ty::Int) | (Ty::Str, Ty::Str) => Ok(()),
            (Ty::List(a), Ty::List(b)) => self.unify(&a, &b, vars),
            (Ty::Fun(a1, a2), Ty::Fun(b1, b2)) => {
                self.unify(&a1, &b1, vars)?;
                self.unify(&a2, &b2, vars)
            }
            (Ty::Record(r1), Ty::Record(r2)) => self.unify_rows(&r1, &r2, vars),
            (left, right) => Err(UnifyError::Mismatch { left, right }),
        }
    }

    fn unify_rows(&mut self, r1: &Row, r2: &Row, vars: &mut VarAlloc) -> Result<(), UnifyError> {
        let r1 = self.resolve_row(r1);
        let r2 = self.resolve_row(r2);
        let mut only1: Vec<FieldEntry> = Vec::new();
        let mut only2: Vec<FieldEntry> = Vec::new();
        let (mut i, mut j) = (0, 0);
        let mut common: Vec<(Ty, Ty)> = Vec::new();
        while i < r1.fields.len() || j < r2.fields.len() {
            match (r1.fields.get(i), r2.fields.get(j)) {
                (Some(f1), Some(f2)) => match f1.name.cmp(&f2.name) {
                    std::cmp::Ordering::Equal => {
                        common.push((f1.ty.clone(), f2.ty.clone()));
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => {
                        only1.push(f1.clone());
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        only2.push(f2.clone());
                        j += 1;
                    }
                },
                (Some(f1), None) => {
                    only1.push(f1.clone());
                    i += 1;
                }
                (None, Some(f2)) => {
                    only2.push(f2.clone());
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        let strip_fields = |fs: &[FieldEntry]| -> Vec<FieldEntry> {
            fs.iter()
                .map(|f| FieldEntry {
                    name: f.name,
                    flag: NO_FLAG,
                    ty: f.ty.strip(),
                })
                .collect()
        };
        match (r1.tail.clone(), r2.tail.clone()) {
            (RowTail::Var(a, _), RowTail::Var(b, _)) if a == b => {
                if let Some(f) = only1.first().or(only2.first()) {
                    return Err(UnifyError::RowFieldClash { field: f.name });
                }
            }
            (RowTail::Var(a, _), RowTail::Var(b, _)) => {
                let c = vars.fresh();
                let suffix_a = Row {
                    fields: strip_fields(&only2),
                    tail: RowTail::Var(c, NO_FLAG),
                };
                let suffix_b = Row {
                    fields: strip_fields(&only1),
                    tail: RowTail::Var(c, NO_FLAG),
                };
                self.check_lacks(a, &suffix_a.fields)?;
                self.check_lacks(b, &suffix_b.fields)?;
                for (suffix, var) in [(&suffix_a, a), (&suffix_b, b)] {
                    if self.occurs_row(var, suffix) {
                        return Err(UnifyError::Occurs {
                            var,
                            ty: Ty::Record(suffix.clone()),
                        });
                    }
                }
                let mut banned: BTreeSet<FieldName> = BTreeSet::new();
                for v in [a, b] {
                    if let Some(s) = self.lacks.get(&v) {
                        banned.extend(s.iter().copied());
                    }
                }
                banned.extend(r1.fields.iter().map(|f| f.name));
                banned.extend(r2.fields.iter().map(|f| f.name));
                self.lacks.insert(c, banned);
                self.row_bind.insert(a, suffix_a);
                self.row_bind.insert(b, suffix_b);
            }
            (RowTail::Var(a, _), RowTail::Closed) => {
                if let Some(f) = only1.first() {
                    return Err(UnifyError::MissingField {
                        field: f.name,
                        record: Ty::Record(Row {
                            fields: strip_fields(&r2.fields),
                            tail: RowTail::Closed,
                        }),
                    });
                }
                let suffix = Row {
                    fields: strip_fields(&only2),
                    tail: RowTail::Closed,
                };
                self.check_lacks(a, &suffix.fields)?;
                if self.occurs_row(a, &suffix) {
                    return Err(UnifyError::Occurs {
                        var: a,
                        ty: Ty::Record(suffix),
                    });
                }
                self.row_bind.insert(a, suffix);
            }
            (RowTail::Closed, RowTail::Var(b, _)) => {
                if let Some(f) = only2.first() {
                    return Err(UnifyError::MissingField {
                        field: f.name,
                        record: Ty::Record(Row {
                            fields: strip_fields(&r1.fields),
                            tail: RowTail::Closed,
                        }),
                    });
                }
                let suffix = Row {
                    fields: strip_fields(&only1),
                    tail: RowTail::Closed,
                };
                self.check_lacks(b, &suffix.fields)?;
                if self.occurs_row(b, &suffix) {
                    return Err(UnifyError::Occurs {
                        var: b,
                        ty: Ty::Record(suffix),
                    });
                }
                self.row_bind.insert(b, suffix);
            }
            (RowTail::Closed, RowTail::Closed) => {
                if let Some(f) = only1.first() {
                    return Err(UnifyError::MissingField {
                        field: f.name,
                        record: Ty::Record(Row {
                            fields: strip_fields(&r2.fields),
                            tail: RowTail::Closed,
                        }),
                    });
                }
                if let Some(f) = only2.first() {
                    return Err(UnifyError::MissingField {
                        field: f.name,
                        record: Ty::Record(Row {
                            fields: strip_fields(&r1.fields),
                            tail: RowTail::Closed,
                        }),
                    });
                }
            }
        }
        for (t1, t2) in common {
            self.unify(&t1, &t2, vars)?;
        }
        Ok(())
    }

    fn occurs_row(&self, v: Var, row: &Row) -> bool {
        self.occurs(v, &Ty::Record(row.clone()))
    }

    fn check_lacks(&self, v: Var, fields: &[FieldEntry]) -> Result<(), UnifyError> {
        if let Some(banned) = self.lacks.get(&v) {
            if let Some(f) = fields.iter().find(|f| banned.contains(&f.name)) {
                return Err(UnifyError::RowFieldClash { field: f.name });
            }
        }
        Ok(())
    }

    /// Exports the lazy bindings as an idempotent [`Subst`].
    fn export(self) -> Result<Subst, UnifyError> {
        let mut ty_out: HashMap<Var, Ty> = HashMap::with_capacity(self.ty_bind.len());
        for (&v, t) in &self.ty_bind {
            ty_out.insert(v, self.deep_resolve(t));
        }
        let mut row_out: HashMap<Var, Row> = HashMap::with_capacity(self.row_bind.len());
        for (&v, r) in &self.row_bind {
            let resolved = self.resolve_row(r);
            let fields = resolved
                .fields
                .iter()
                .map(|f| FieldEntry {
                    name: f.name,
                    flag: f.flag,
                    ty: self.deep_resolve(&f.ty),
                })
                .collect();
            row_out.insert(
                v,
                Row {
                    fields,
                    tail: resolved.tail,
                },
            );
        }
        Ok(Subst::from_resolved_parts(ty_out, row_out))
    }

    /// Fully resolves a type through both binding maps.
    fn deep_resolve(&self, t: &Ty) -> Ty {
        match self.head(t) {
            Ty::Var(v, f) => Ty::Var(*v, *f),
            Ty::Int => Ty::Int,
            Ty::Str => Ty::Str,
            Ty::List(inner) => Ty::List(Box::new(self.deep_resolve(inner))),
            Ty::Fun(a, b) => Ty::Fun(
                Box::new(self.deep_resolve(a)),
                Box::new(self.deep_resolve(b)),
            ),
            Ty::Record(row) => {
                let row = self.resolve_row(row);
                let fields = row
                    .fields
                    .iter()
                    .map(|fe| FieldEntry {
                        name: fe.name,
                        flag: fe.flag,
                        ty: self.deep_resolve(&fe.ty),
                    })
                    .collect();
                Ty::Record(Row {
                    fields,
                    tail: row.tail,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unify::mgu;
    use rowpoly_lang::Symbol;

    fn field(name: &str, ty: Ty) -> FieldEntry {
        FieldEntry {
            name: Symbol::intern(name),
            flag: NO_FLAG,
            ty,
        }
    }

    /// Both backends agree on the paper's §4.2 example.
    #[test]
    fn agrees_on_gci_example() {
        let mut v1 = VarAlloc::new();
        let a = v1.fresh();
        let a2 = v1.fresh();
        let t1 = Ty::fun(Ty::list(Ty::svar(a)), Ty::list(Ty::Int));
        let t2 = Ty::fun(Ty::list(Ty::Int), Ty::svar(a2));
        let s = mgu_uf([(t1.clone(), t2.clone())], &mut v1).unwrap();
        assert_eq!(s.apply(&t1), Ty::fun(Ty::list(Ty::Int), Ty::list(Ty::Int)));
        assert_eq!(s.apply(&t1), s.apply(&t2));
    }

    #[test]
    fn chases_transitive_bindings() {
        let mut vars = VarAlloc::new();
        let (a, b, c) = (vars.fresh(), vars.fresh(), vars.fresh());
        let s = mgu_uf(
            [
                (Ty::svar(a), Ty::svar(b)),
                (Ty::svar(b), Ty::svar(c)),
                (Ty::svar(c), Ty::Int),
            ],
            &mut vars,
        )
        .unwrap();
        assert_eq!(s.apply(&Ty::svar(a)), Ty::Int);
    }

    #[test]
    fn detects_occurs_through_bindings() {
        let mut vars = VarAlloc::new();
        let (a, b) = (vars.fresh(), vars.fresh());
        // a ~ [b], then b ~ a: infinite.
        let r = mgu_uf(
            [
                (Ty::svar(a), Ty::list(Ty::svar(b))),
                (Ty::svar(b), Ty::svar(a)),
            ],
            &mut vars,
        );
        assert!(matches!(r, Err(UnifyError::Occurs { .. })), "{r:?}");
    }

    #[test]
    fn rows_splice_through_chains() {
        let mut vars = VarAlloc::new();
        let (r1, r2, r3) = (vars.fresh(), vars.fresh(), vars.fresh());
        // {x, r1} ~ {y, r2}, then {x, y, common} ~ {z, r3}.
        let tx = Ty::record(vec![field("x", Ty::Int)], RowTail::Var(r1, NO_FLAG));
        let ty_ = Ty::record(vec![field("y", Ty::Int)], RowTail::Var(r2, NO_FLAG));
        let tz = Ty::record(vec![field("z", Ty::Int)], RowTail::Var(r3, NO_FLAG));
        let s = mgu_uf(
            [(tx.clone(), ty_.clone()), (tx.clone(), tz.clone())],
            &mut vars,
        )
        .unwrap();
        let u = s.apply(&tx);
        match u {
            Ty::Record(row) => {
                let names: Vec<&str> = row.fields.iter().map(|f| f.name.as_str()).collect();
                assert_eq!(names, vec!["x", "y", "z"]);
            }
            other => panic!("expected record, got {other:?}"),
        }
        assert_eq!(s.apply(&tx), s.apply(&ty_));
        assert_eq!(s.apply(&tx), s.apply(&tz));
    }

    #[test]
    fn lacks_violation_detected() {
        let mut vars = VarAlloc::new();
        let (r, q) = (vars.fresh(), vars.fresh());
        // Two rows share tail r; one gains field d from elsewhere while
        // the other already has d.
        let with_d = Ty::record(vec![field("d", Ty::Int)], RowTail::Var(r, NO_FLAG));
        let bare = Ty::record(vec![], RowTail::Var(r, NO_FLAG));
        let other = Ty::record(vec![field("d", Ty::Str)], RowTail::Var(q, NO_FLAG));
        // bare ~ other forces r to absorb d:Str; but with_d already pins
        // d:Int next to r.
        let result = mgu_uf(
            [
                (bare, other),
                (with_d, Ty::record(vec![], RowTail::Var(q, NO_FLAG))),
            ],
            &mut vars,
        );
        // Either a row clash or a type mismatch is a correct rejection;
        // accepting with duplicate fields would be the bug.
        assert!(result.is_err(), "must not build a duplicated row");
    }

    /// Cross-check with the substitution-based backend on the crate's
    /// existing scenario battery.
    #[test]
    fn agrees_with_subst_backend_on_scenarios() {
        type Scenario = Box<dyn Fn(&mut VarAlloc) -> (Ty, Ty)>;
        let scenarios: Vec<Scenario> = vec![
            Box::new(|v| (Ty::svar(v.fresh()), Ty::Int)),
            Box::new(|v| {
                let a = v.fresh();
                (Ty::fun(Ty::svar(a), Ty::svar(a)), Ty::fun(Ty::Int, Ty::Int))
            }),
            Box::new(|v| {
                let (r1, r2) = (v.fresh(), v.fresh());
                (
                    Ty::record(vec![field("x", Ty::Int)], RowTail::Var(r1, NO_FLAG)),
                    Ty::record(vec![field("y", Ty::Str)], RowTail::Var(r2, NO_FLAG)),
                )
            }),
            Box::new(|v| {
                let a = v.fresh();
                (Ty::svar(a), Ty::list(Ty::svar(a)))
            }),
            Box::new(|_| (Ty::Int, Ty::Str)),
        ];
        for (i, mk) in scenarios.iter().enumerate() {
            let mut v1 = VarAlloc::new();
            let mut v2 = VarAlloc::new();
            let (a1, b1) = mk(&mut v1);
            let (a2, b2) = mk(&mut v2);
            let r_subst = mgu([(a1.clone(), b1.clone())], &mut v1);
            let r_uf = mgu_uf([(a2.clone(), b2.clone())], &mut v2);
            assert_eq!(
                r_subst.is_ok(),
                r_uf.is_ok(),
                "scenario {i}: verdicts differ ({r_subst:?} vs {r_uf:?})"
            );
            if let (Ok(s), Ok(u)) = (r_subst, r_uf) {
                // Both unify their inputs.
                assert_eq!(s.apply(&a1).strip(), s.apply(&b1).strip());
                assert_eq!(u.apply(&a2).strip(), u.apply(&b2).strip());
            }
        }
    }
}
