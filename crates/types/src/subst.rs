//! Substitutions over type and row variables.

use std::collections::HashMap;
use std::fmt;

use crate::ty::{FieldEntry, Row, RowTail, Ty, Var};

/// An idempotent substitution mapping type variables to skeleton types and
/// row variables to skeleton row suffixes.
///
/// Substitutions are produced by unification over `⇓RP`-skeletons (the
/// codomain carries `NO_FLAG` sentinels). Applying one to a flow-decorated
/// `PR` term is *not* done with [`Subst::apply`] — that is the job of
/// `applyS` ([`crate::apply_subst_flow`]), which decorates every inserted
/// copy with fresh flags and replicates the flow in β.
#[derive(Clone, Default, PartialEq)]
pub struct Subst {
    ty: HashMap<Var, Ty>,
    row: HashMap<Var, Row>,
}

impl Subst {
    /// The identity substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Whether this is the identity substitution.
    pub fn is_empty(&self) -> bool {
        self.ty.is_empty() && self.row.is_empty()
    }

    /// The type binding of `v`, if any.
    pub fn ty_binding(&self, v: Var) -> Option<&Ty> {
        self.ty.get(&v)
    }

    /// The row binding of `v`, if any.
    pub fn row_binding(&self, v: Var) -> Option<&Row> {
        self.row.get(&v)
    }

    /// Whether `v` is in the substitution's domain (as either sort).
    pub fn binds(&self, v: Var) -> bool {
        self.ty.contains_key(&v) || self.row.contains_key(&v)
    }

    /// Iterates over type bindings.
    pub fn ty_bindings(&self) -> impl Iterator<Item = (Var, &Ty)> {
        self.ty.iter().map(|(&v, t)| (v, t))
    }

    /// Iterates over row bindings.
    pub fn row_bindings(&self) -> impl Iterator<Item = (Var, &Row)> {
        self.row.iter().map(|(&v, r)| (v, r))
    }

    /// Builds a substitution from already fully-resolved (idempotent)
    /// binding maps. The caller guarantees that no right-hand side
    /// mentions a bound variable; used by the union-find unifier's export
    /// step.
    pub(crate) fn from_resolved_parts(ty: HashMap<Var, Ty>, row: HashMap<Var, Row>) -> Subst {
        let s = Subst { ty, row };
        #[cfg(debug_assertions)]
        {
            let bound: Vec<Var> = s.ty.keys().chain(s.row.keys()).copied().collect();
            for rhs in s.ty.values() {
                debug_assert!(
                    bound.iter().all(|&v| !rhs.mentions_var(v)),
                    "resolved bindings must be idempotent: {rhs:?}"
                );
            }
            for rhs in s.row.values() {
                let t = Ty::Record(rhs.clone());
                debug_assert!(
                    bound.iter().all(|&v| !t.mentions_var(v)),
                    "resolved row bindings must be idempotent: {rhs:?}"
                );
            }
        }
        s
    }

    /// Builds a pure renaming `[a1/b1, …, an/bn]`, used for scheme
    /// instantiation. Whether each `ai` is a type or a row variable is not
    /// yet known, so the renaming is recorded in *both* sorts; application
    /// picks the right one from the occurrence position.
    pub fn renaming(pairs: impl IntoIterator<Item = (Var, Var)>) -> Subst {
        let mut s = Subst::new();
        for (from, to) in pairs {
            s.ty.insert(from, Ty::svar(to));
            s.row.insert(
                from,
                Row {
                    fields: Vec::new(),
                    tail: RowTail::Var(to, crate::ty::NO_FLAG),
                },
            );
        }
        s
    }

    /// Adds the binding `v ↦ t`, keeping the substitution idempotent:
    /// `t` is first closed under `self`, then the new binding is applied
    /// to every existing right-hand side.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is already bound or occurs in the
    /// closed `t` (the caller — unification — performs the occurs check).
    pub fn bind_ty(&mut self, v: Var, t: &Ty) {
        let t = self.apply(t);
        debug_assert!(!t.mentions_var(v), "occurs-check violation binding {v:?}");
        let single = Subst {
            ty: HashMap::from([(v, t.clone())]),
            row: HashMap::new(),
        };
        for rhs in self.ty.values_mut() {
            *rhs = single.apply(rhs);
        }
        for rhs in self.row.values_mut() {
            *rhs = single.apply_row_suffix(rhs);
        }
        let prev = self.ty.insert(v, t);
        debug_assert!(prev.is_none(), "variable bound twice");
    }

    /// Adds the row binding `v ↦ row` (same discipline as [`Self::bind_ty`]).
    pub fn bind_row(&mut self, v: Var, row: &Row) {
        let row = self.apply_row_suffix(row);
        debug_assert!(
            !Ty::Record(row.clone()).mentions_var(v),
            "occurs-check violation binding row {v:?}"
        );
        let single = Subst {
            ty: HashMap::new(),
            row: HashMap::from([(v, row.clone())]),
        };
        for rhs in self.ty.values_mut() {
            *rhs = single.apply(rhs);
        }
        for rhs in self.row.values_mut() {
            *rhs = single.apply_row_suffix(rhs);
        }
        let prev = self.row.insert(v, row);
        debug_assert!(prev.is_none(), "row variable bound twice");
    }

    /// Applies the substitution to a skeleton type. Flags on untouched
    /// structure are preserved; inserted bindings carry `NO_FLAG`.
    pub fn apply(&self, t: &Ty) -> Ty {
        if self.is_empty() {
            return t.clone();
        }
        match t {
            Ty::Var(v, f) => match self.ty.get(v) {
                Some(b) => b.clone(),
                None => Ty::Var(*v, *f),
            },
            Ty::Int => Ty::Int,
            Ty::Str => Ty::Str,
            Ty::List(t) => Ty::List(Box::new(self.apply(t))),
            Ty::Fun(a, b) => Ty::Fun(Box::new(self.apply(a)), Box::new(self.apply(b))),
            Ty::Record(row) => Ty::Record(self.apply_row(row)),
        }
    }

    fn apply_row(&self, row: &Row) -> Row {
        let mut fields: Vec<FieldEntry> = row
            .fields
            .iter()
            .map(|f| FieldEntry {
                name: f.name,
                flag: f.flag,
                ty: self.apply(&f.ty),
            })
            .collect();
        let tail = match row.tail {
            RowTail::Closed => RowTail::Closed,
            RowTail::Var(v, f) => match self.row.get(&v) {
                None => RowTail::Var(v, f),
                Some(suffix) => {
                    for extra in &suffix.fields {
                        debug_assert!(
                            fields.iter().all(|f| f.name != extra.name),
                            "row splice introduces duplicate field {}",
                            extra.name
                        );
                        fields.push(extra.clone());
                    }
                    suffix.tail.clone()
                }
            },
        };
        fields.sort_by_key(|f| f.name);
        Row { fields, tail }
    }

    /// Applies the substitution to a row suffix (a row-variable binding).
    pub fn apply_row_suffix(&self, row: &Row) -> Row {
        self.apply_row(row)
    }
}

impl fmt::Debug for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        let mut tys: Vec<_> = self.ty.iter().collect();
        tys.sort_by_key(|(v, _)| **v);
        for (v, t) in tys {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{v:?}/{t:?}")?;
        }
        let mut rows: Vec<_> = self.row.iter().collect();
        rows.sort_by_key(|(v, _)| **v);
        for (v, r) in rows {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{v:?}/row{r:?}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::NO_FLAG;
    use rowpoly_lang::Symbol;

    fn field(name: &str, ty: Ty) -> FieldEntry {
        FieldEntry {
            name: Symbol::intern(name),
            flag: NO_FLAG,
            ty,
        }
    }

    #[test]
    fn apply_replaces_variables() {
        let mut s = Subst::new();
        s.bind_ty(Var(0), &Ty::Int);
        let t = Ty::fun(Ty::svar(Var(0)), Ty::svar(Var(1)));
        assert_eq!(s.apply(&t), Ty::fun(Ty::Int, Ty::svar(Var(1))));
    }

    #[test]
    fn bind_keeps_idempotence() {
        // [a/ b→b] then [b/Int] must give a ↦ Int→Int.
        let mut s = Subst::new();
        s.bind_ty(Var(0), &Ty::fun(Ty::svar(Var(1)), Ty::svar(Var(1))));
        s.bind_ty(Var(1), &Ty::Int);
        assert_eq!(s.apply(&Ty::svar(Var(0))), Ty::fun(Ty::Int, Ty::Int));
        // Applying twice changes nothing.
        let once = s.apply(&Ty::svar(Var(0)));
        assert_eq!(s.apply(&once), once);
    }

    #[test]
    fn row_splice_merges_and_sorts() {
        // {z : Int, r} with r ↦ {a : Str, q} gives {a : Str, z : Int, q}.
        let mut s = Subst::new();
        s.bind_row(
            Var(0),
            &Row {
                fields: vec![field("a", Ty::Str)],
                tail: RowTail::Var(Var(1), NO_FLAG),
            },
        );
        let t = Ty::record(vec![field("z", Ty::Int)], RowTail::Var(Var(0), NO_FLAG));
        match s.apply(&t) {
            Ty::Record(row) => {
                assert_eq!(row.fields.len(), 2);
                assert_eq!(row.fields[0].name, Symbol::intern("a"));
                assert_eq!(row.fields[1].name, Symbol::intern("z"));
                assert_eq!(row.tail, RowTail::Var(Var(1), NO_FLAG));
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn row_binding_composes() {
        // r0 ↦ {a, r1}, then r1 ↦ {b, closed}: r0 covers both fields.
        let mut s = Subst::new();
        s.bind_row(
            Var(0),
            &Row {
                fields: vec![field("a", Ty::Int)],
                tail: RowTail::Var(Var(1), NO_FLAG),
            },
        );
        s.bind_row(
            Var(1),
            &Row {
                fields: vec![field("b", Ty::Int)],
                tail: RowTail::Closed,
            },
        );
        let t = Ty::record(vec![], RowTail::Var(Var(0), NO_FLAG));
        match s.apply(&t) {
            Ty::Record(row) => {
                assert_eq!(row.fields.len(), 2);
                assert_eq!(row.tail, RowTail::Closed);
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn renaming_handles_both_sorts() {
        let s = Subst::renaming([(Var(0), Var(10))]);
        // As a type variable.
        assert_eq!(s.apply(&Ty::svar(Var(0))), Ty::svar(Var(10)));
        // As a row variable.
        let t = Ty::record(vec![], RowTail::Var(Var(0), NO_FLAG));
        match s.apply(&t) {
            Ty::Record(row) => assert_eq!(row.tail, RowTail::Var(Var(10), NO_FLAG)),
            other => panic!("expected record, got {other:?}"),
        }
    }
}
