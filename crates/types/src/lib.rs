//! Type-term substrate for row-polymorphic record inference.
//!
//! Implements the three type universes of Simon, *Optimal Inference of
//! Fields in Row-Polymorphic Records* (PLDI 2014) — monotypes `M`,
//! polytypes `P`, and flow-decorated record polytypes `PR` — together with
//! the operations the derived inference rules are built from:
//!
//! * [`Ty`], [`Row`] — terms with row-polymorphic records whose fields and
//!   variable occurrences carry existence [`rowpoly_boolfun::Flag`]s;
//! * [`unify`]/[`mgu`] — most general unifiers over `⇓RP`-skeletons, with
//!   Rémy-style row unification and occurs checks;
//! * [`flag_lits`] — the `*t+` flag-sequence extraction of Definition 1,
//!   with contra-variant polarity;
//! * [`apply_subst_flow`] — `applyS` (Fig. 4): applying a skeleton
//!   substitution to a flow-decorated judgement, replicating flows by
//!   Boolean expansion;
//! * [`instantiate`]/[`generalize`] — type schemes whose flags are
//!   implicitly generalized alongside the quantified variables;
//! * [`TyEnv`] — copy-on-write environments with the version-tag
//!   optimisation of the paper's Section 6.
//!
//! # Example
//!
//! ```
//! use rowpoly_types::{unify, Ty, VarAlloc};
//!
//! let mut vars = VarAlloc::new();
//! let a = vars.fresh();
//! let s = unify(&Ty::svar(a), &Ty::fun(Ty::Int, Ty::Int), &mut vars)?;
//! assert_eq!(s.apply(&Ty::svar(a)), Ty::fun(Ty::Int, Ty::Int));
//! # Ok::<(), rowpoly_types::UnifyError>(())
//! ```

mod applys;
mod env;
mod flags;
mod pretty;
mod subst;
mod ty;
mod unify;
mod unify_uf;

pub use applys::{apply_subst_flow, compact_flow, import_scheme, instantiate, ReplacedFlags};
pub use env::{generalize, Binding, Scheme, TyEnv};
pub use flags::{flag_lits, row_suffix_lits};
pub use pretty::{render_scheme, render_scheme_with_flow, render_ty};
pub use subst::Subst;
pub use ty::{FieldEntry, Row, RowTail, Ty, Var, VarAlloc, NO_FLAG};
pub use unify::{mgu, unify, UnifyError};
pub use unify_uf::mgu_uf;
