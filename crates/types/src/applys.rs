//! `applyS` — applying a skeleton substitution to flow-decorated types
//! (Fig. 4 of the paper), and scheme instantiation.
//!
//! A substitution `σ ∈ V → P` produced by unification maps type variables
//! to terms *without* flow information. Applying it to a judgement
//! `t; ρR | β` therefore has to:
//!
//! 1. find the `n` occurrences `a.f1, …, a.fn` of each substituted
//!    variable `a` and their flags `⟨f1, …, fn⟩`;
//! 2. replace occurrence `i` by a freshly decorated copy
//!    `τi = ⇑RP(⇓RP(σ(a)))`;
//! 3. replicate the flow between `f1, …, fn` once per flag *column* of the
//!    copies — `expand_{f1…fn, τ1+[j]…τn+[j]}(β)` for each position `j`,
//!    where the targets carry the contra-variant polarity of their
//!    position inside `τ` (Example 3);
//! 4. existentially project the now-dead original flags out of β.

use rowpoly_boolfun::{Cnf, Flag, FlagAlloc, Lit, ProjectStats};

use crate::env::{Binding, Scheme, TyEnv};
use crate::flags::{flag_lits, row_suffix_lits};
use crate::subst::Subst;
use crate::ty::{Row, RowTail, Ty, Var, VarAlloc, NO_FLAG};

/// Replaced occurrence flags, partitioned by where the occurrence lived.
///
/// Flags replaced in the judgement's own result type are exclusive to the
/// judgement and may be projected out of β immediately; flags replaced in
/// environment bindings may still occur in *clones* of the environment
/// held by sibling judgements, so their projection must be deferred until
/// the enclosing rule knows they are globally dead.
#[derive(Debug, Default)]
pub struct ReplacedFlags {
    /// Occurrence flags replaced in the κ type (safe to project now).
    pub kappa: Vec<Flag>,
    /// Occurrence flags replaced in environment bindings (defer).
    pub env: Vec<Flag>,
    /// Per occurrence: the replaced flag and the flags of its decorated
    /// copy. The expansion transports the occurrence flag's flow onto
    /// every copy flag, so diagnostic provenance recorded against the
    /// original carries over to each copy (the original is about to be
    /// projected out of β and would otherwise take its story with it).
    pub copies: Vec<(Flag, Vec<Flag>)>,
}

/// Applies `subst` to the judgement `kappa; env | beta`, transporting flow
/// information per Fig. 4. See the module documentation.
///
/// Only environment bindings that mention the substitution's domain are
/// rewritten (global-layer bindings are promoted into the local layer
/// first); if no binding is touched, the environment — including its
/// version tag — is left alone, enabling the Section 6 meet shortcut.
///
/// Unlike the paper's monolithic `applyS`, the final `∃`-projection of the
/// replaced occurrence flags is *returned* to the caller (see
/// [`ReplacedFlags`]): the engine shares β across sibling judgements, so
/// only it can decide when an environment flag is dead everywhere.
///
/// The traversal order (result type first, then environment bindings in
/// symbol order) fixes the occurrence order; any fixed order yields
/// logically equivalent flows.
pub fn apply_subst_flow(
    subst: &Subst,
    kappa: &mut Ty,
    env: &mut TyEnv,
    beta: &mut Cnf,
    flags: &mut FlagAlloc,
) -> ReplacedFlags {
    if subst.is_empty() {
        return ReplacedFlags::default();
    }
    let mut occ: Vec<(Var, Flag, Vec<Lit>)> = Vec::new();
    walk(kappa, subst, flags, &mut occ);
    let kappa_count = occ.len();

    // Promote global bindings the substitution touches, then rewrite only
    // the touched local bindings.
    for name in env.globals_touched_by(subst) {
        env.promote(name);
    }
    let touched: Vec<rowpoly_lang::Symbol> = env
        .iter_local()
        .filter(|(_, b)| b.free_vars().iter().any(|v| subst.binds(*v)))
        .map(|(s, _)| s)
        .collect();
    if !touched.is_empty() {
        for (name, binding) in env.iter_local_mut() {
            if !touched.contains(&name) {
                continue;
            }
            match binding {
                Binding::Mono(t) => walk(t, subst, flags, &mut occ),
                Binding::Poly(s) => walk(&mut s.ty, subst, flags, &mut occ),
            }
        }
    }
    if occ.is_empty() {
        return ReplacedFlags::default();
    }
    let mut replaced = ReplacedFlags::default();
    for (i, (_, f, lits)) in occ.iter().enumerate() {
        if i < kappa_count {
            replaced.kappa.push(*f);
        } else {
            replaced.env.push(*f);
        }
        replaced
            .copies
            .push((*f, lits.iter().map(|l| l.flag()).collect()));
    }
    // Group occurrences by variable, preserving encounter order.
    let mut grouped: Vec<(Var, Vec<Flag>, Vec<Vec<Lit>>)> = Vec::new();
    for (v, f, vec) in occ {
        match grouped.iter_mut().find(|(w, _, _)| *w == v) {
            Some((_, fs, vecs)) => {
                fs.push(f);
                vecs.push(vec);
            }
            None => grouped.push((v, vec![f], vec![vec])),
        }
    }
    for (_, sources, vecs) in &grouped {
        debug_assert!(
            sources.iter().all(|&f| f != NO_FLAG),
            "applyS on a skeleton judgement"
        );
        let width = vecs[0].len();
        debug_assert!(
            vecs.iter().all(|v| v.len() == width),
            "copies share a shape"
        );
        for j in 0..width {
            let column: Vec<Lit> = vecs.iter().map(|v| v[j]).collect();
            beta.expand(sources, &column);
        }
    }
    replaced
}

fn walk(t: &mut Ty, subst: &Subst, flags: &mut FlagAlloc, occ: &mut Vec<(Var, Flag, Vec<Lit>)>) {
    match t {
        Ty::Var(v, f) => {
            if let Some(binding) = subst.ty_binding(*v) {
                let copy = binding.decorate(flags);
                occ.push((*v, *f, flag_lits(&copy)));
                *t = copy;
            }
        }
        Ty::Int | Ty::Str => {}
        Ty::List(inner) => walk(inner, subst, flags, occ),
        Ty::Fun(a, b) => {
            walk(a, subst, flags, occ);
            walk(b, subst, flags, occ);
        }
        Ty::Record(row) => {
            for fe in &mut row.fields {
                walk(&mut fe.ty, subst, flags, occ);
            }
            if let RowTail::Var(v, f) = row.tail {
                if let Some(suffix) = subst.row_binding(v) {
                    let copy = decorate_row(suffix, flags);
                    occ.push((v, f, row_suffix_lits(&copy)));
                    row.fields.extend(copy.fields);
                    row.fields.sort_by_key(|f| f.name);
                    debug_assert!(
                        row.fields.windows(2).all(|w| w[0].name != w[1].name),
                        "row splice produced duplicate fields"
                    );
                    row.tail = copy.tail;
                }
            }
        }
    }
}

fn decorate_row(row: &Row, flags: &mut FlagAlloc) -> Row {
    match Ty::Record(row.clone()).decorate(flags) {
        Ty::Record(r) => r,
        _ => unreachable!("decorate preserves constructors"),
    }
}

/// Instantiates a scheme (rule (VAR-LET)): quantified variables are
/// renamed to fresh ones and *every* flag of the body is refreshed; the
/// flow of the body's flags is duplicated onto the fresh copies by a
/// single (positive) expansion. The scheme itself — and its share of β —
/// is left untouched, so later instantiations are independent.
pub fn instantiate(
    scheme: &Scheme,
    vars: &mut VarAlloc,
    flags: &mut FlagAlloc,
    beta: &mut Cnf,
) -> Ty {
    let renaming: Vec<(Var, Var)> = scheme.vars.iter().map(|&v| (v, vars.fresh())).collect();
    let subst = Subst::renaming(renaming);
    // Rename quantified variables on the skeleton (flags preserved
    // positionally by re-decorating below).
    let renamed = apply_renaming(&scheme.ty, &subst);
    // Refresh all flags. The old→new correspondence must be read off in
    // the *same* traversal order on both sides: `map_flags` rebuilds the
    // term structurally, so the fresh flags are re-collected with
    // `Ty::flags` (Definition 1 order), exactly like the old ones.
    let old: Vec<Flag> = scheme.ty.flags();
    let instance = renamed.map_flags(&mut |_| flags.fresh());
    let fresh_flags: Vec<Lit> = instance.flags().into_iter().map(Lit::pos).collect();
    debug_assert_eq!(
        old.len(),
        fresh_flags.len(),
        "renaming preserves flag count"
    );
    if !old.is_empty() {
        beta.expand(&old, &fresh_flags);
    }
    // Copy the scheme's stored flow (top-level definitions keep their
    // projected flow with the scheme rather than in the working β).
    if !scheme.flow.is_empty() {
        let map: std::collections::HashMap<Flag, Flag> = old
            .iter()
            .copied()
            .zip(fresh_flags.iter().map(|l| l.flag()))
            .collect();
        for c in scheme.flow.clauses() {
            if let Some(copy) = c.rename(|l| match map.get(&l.flag()) {
                Some(&nf) => l.with_flag(nf),
                None => l,
            }) {
                beta.add_clause(copy);
            }
        }
        beta.normalize();
    }
    instance
}

/// Renames a scheme produced by one engine into another engine's
/// namespaces: every type variable (quantified or free) and every flag
/// gets a fresh identity from the consuming allocators, with the stored
/// flow renamed alongside. Without this, a foreign scheme's numbering
/// collides with the consumer's — [`instantiate`] expands the working β
/// over the scheme's ty flags, and a colliding flag would capture
/// unrelated local constraints. Intended for *closed* schemes (flow over
/// the ty's own flags); flow literals outside the ty are kept verbatim.
pub fn import_scheme(scheme: &Scheme, vars: &mut VarAlloc, flags: &mut FlagAlloc) -> Scheme {
    let mut var_map: Vec<(Var, Var)> = Vec::new();
    for v in scheme
        .ty
        .vars()
        .into_iter()
        .chain(scheme.vars.iter().copied())
    {
        if !var_map.iter().any(|&(old, _)| old == v) {
            var_map.push((v, vars.fresh()));
        }
    }
    let subst = Subst::renaming(var_map.iter().copied());
    let renamed = apply_renaming(&scheme.ty, &subst);

    // Shared flags must stay shared: rename by identity, not position.
    let mut flag_map: std::collections::HashMap<Flag, Flag> = std::collections::HashMap::new();
    for f in scheme.ty.flags() {
        flag_map.entry(f).or_insert_with(|| flags.fresh());
    }
    let ty = renamed.map_flags(&mut |f| if f == NO_FLAG { NO_FLAG } else { flag_map[&f] });

    let mut flow = Cnf::top();
    for c in scheme.flow.clauses() {
        if let Some(copy) = c.rename(|l| match flag_map.get(&l.flag()) {
            Some(&nf) => l.with_flag(nf),
            None => l,
        }) {
            flow.add_clause(copy);
        }
    }
    flow.normalize();

    let quantified = scheme
        .vars
        .iter()
        .map(|&v| {
            var_map
                .iter()
                .find(|&&(old, _)| old == v)
                .map(|&(_, new)| new)
                .expect("every quantified variable was renamed")
        })
        .collect();
    let mut out = Scheme::new(quantified, ty);
    out.flow = flow;
    out
}

/// Applies a pure-renaming substitution structurally (flags preserved;
/// only variable names change). Unlike [`Subst::apply`] this keeps the
/// flags of renamed occurrences, because instantiation refreshes them in a
/// controlled second pass.
fn apply_renaming(t: &Ty, subst: &Subst) -> Ty {
    match t {
        Ty::Var(v, f) => match subst.ty_binding(*v) {
            Some(Ty::Var(w, _)) => Ty::Var(*w, *f),
            Some(other) => unreachable!("renaming bound to non-variable {other:?}"),
            None => Ty::Var(*v, *f),
        },
        Ty::Int => Ty::Int,
        Ty::Str => Ty::Str,
        Ty::List(inner) => Ty::List(Box::new(apply_renaming(inner, subst))),
        Ty::Fun(a, b) => Ty::Fun(
            Box::new(apply_renaming(a, subst)),
            Box::new(apply_renaming(b, subst)),
        ),
        Ty::Record(row) => {
            let fields = row
                .fields
                .iter()
                .map(|fe| crate::ty::FieldEntry {
                    name: fe.name,
                    flag: fe.flag,
                    ty: apply_renaming(&fe.ty, subst),
                })
                .collect();
            let tail = match row.tail {
                RowTail::Closed => RowTail::Closed,
                RowTail::Var(v, f) => match subst.row_binding(v) {
                    Some(Row {
                        fields,
                        tail: RowTail::Var(w, _),
                    }) if fields.is_empty() => RowTail::Var(*w, f),
                    Some(other) => unreachable!("renaming bound row to {other:?}"),
                    None => RowTail::Var(v, f),
                },
            };
            Ty::Record(Row { fields, tail })
        }
    }
}

/// Projects β onto the flags that are still alive in the judgement
/// (`env` plus `kappa`), removing stale flags. The paper's Section 6
/// stresses that this must happen before expansions, or copies alias their
/// originals through stale equivalences. Returns the elimination
/// engine's work counters so callers can fold them into phase stats.
pub fn compact_flow(beta: &mut Cnf, env: &TyEnv, kappa: &Ty) -> ProjectStats {
    let mut live = env.flags();
    live.extend(kappa.flags());
    beta.project_onto(&live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_lang::Symbol;

    /// Example 3 of the paper: applying `[a / b→b]` to the identity's type
    /// `a.fi → a.fo` with flow `fo → fi` yields
    /// `(b.f1→b.f2) → (b.f3→b.f4)` with flow `fo→fi ∧ f4→f2 ∧ f1→f3`
    /// projected onto the new flags: `f4→f2 ∧ f1→f3`.
    #[test]
    fn example_3_identity_self_substitution() {
        let mut vars = VarAlloc::new();
        let mut flags = FlagAlloc::new();
        let a = vars.fresh();
        let b = vars.fresh();
        let fi = flags.fresh();
        let fo = flags.fresh();
        let mut kappa = Ty::fun(Ty::var(a, fi), Ty::var(a, fo));
        let mut beta = Cnf::top();
        beta.imply(Lit::pos(fo), Lit::pos(fi));
        let mut subst = Subst::new();
        subst.bind_ty(a, &Ty::fun(Ty::svar(b), Ty::svar(b)));
        let mut env = TyEnv::new();
        let replaced = apply_subst_flow(&subst, &mut kappa, &mut env, &mut beta, &mut flags);
        beta.project_out(
            &replaced
                .kappa
                .iter()
                .chain(&replaced.env)
                .copied()
                .collect(),
        );

        // Shape: (b.f1→b.f2) → (b.f3→b.f4).
        let (f1, f2, f3, f4) = match &kappa {
            Ty::Fun(i, o) => match (i.as_ref(), o.as_ref()) {
                (Ty::Fun(i1, i2), Ty::Fun(o1, o2)) => {
                    let get = |t: &Ty| match t {
                        Ty::Var(v, f) => {
                            assert_eq!(*v, b);
                            *f
                        }
                        other => panic!("expected var, got {other:?}"),
                    };
                    (get(i1), get(i2), get(o1), get(o2))
                }
                other => panic!("expected functions, got {other:?}"),
            },
            other => panic!("expected function, got {other:?}"),
        };
        // Original flags are gone.
        assert!(!beta.mentions(fi));
        assert!(!beta.mentions(fo));
        // Expected flow: f4→f2 and f1→f3 (Example 3).
        let mut expect = Cnf::top();
        expect.imply(Lit::pos(f4), Lit::pos(f2));
        expect.imply(Lit::pos(f1), Lit::pos(f3));
        assert!(beta.equivalent(&expect), "got {beta:?}, want {expect:?}");
    }

    /// The `cond` example of Section 2.4: [a / {FOO : b, c}] applied to
    /// `a.f1 → a.f2 → a.f3` with flow `f3→f1 ∧ f3→f2` replicates the flow
    /// three times (once per flag of the record copy).
    #[test]
    fn section_2_4_cond_substitution() {
        let mut vars = VarAlloc::new();
        let mut flags = FlagAlloc::new();
        let a = vars.fresh();
        let b = vars.fresh();
        let c = vars.fresh();
        let f1 = flags.fresh();
        let f2 = flags.fresh();
        let f3 = flags.fresh();
        let mut kappa = Ty::fun(Ty::var(a, f1), Ty::fun(Ty::var(a, f2), Ty::var(a, f3)));
        let mut beta = Cnf::top();
        beta.imply(Lit::pos(f3), Lit::pos(f1));
        beta.imply(Lit::pos(f3), Lit::pos(f2));
        let record = Ty::record(
            vec![crate::ty::FieldEntry {
                name: Symbol::intern("foo"),
                flag: NO_FLAG,
                ty: Ty::svar(b),
            }],
            RowTail::Var(c, NO_FLAG),
        );
        let mut subst = Subst::new();
        subst.bind_ty(a, &record);
        let mut env = TyEnv::new();
        let replaced = apply_subst_flow(&subst, &mut kappa, &mut env, &mut beta, &mut flags);
        beta.project_out(
            &replaced
                .kappa
                .iter()
                .chain(&replaced.env)
                .copied()
                .collect(),
        );

        // Collect the three copies' flag triples (f_field, f_tail, f_b).
        let copies: Vec<Vec<Flag>> = match &kappa {
            Ty::Fun(t1, rest) => match rest.as_ref() {
                Ty::Fun(t2, t3) => vec![t1.flags(), t2.flags(), t3.flags()],
                other => panic!("expected function, got {other:?}"),
            },
            other => panic!("expected function, got {other:?}"),
        };
        assert!(copies.iter().all(|c| c.len() == 3));
        // Per column j: copy3[j] → copy1[j] and copy3[j] → copy2[j].
        let mut expect = Cnf::top();
        for ((&c0, &c1), &c2) in copies[0].iter().zip(&copies[1]).zip(&copies[2]) {
            expect.imply(Lit::pos(c2), Lit::pos(c0));
            expect.imply(Lit::pos(c2), Lit::pos(c1));
        }
        assert!(beta.equivalent(&expect), "got {beta:?}");
    }

    #[test]
    fn row_splice_transports_tail_flow() {
        // κ = {x.fx : Int, r.f1} → {x.gx : Int, r.f2} with f2 → f1;
        // substituting r by {y : Int, s} must give flows between the
        // copies of the y-flag and the new tails.
        let mut vars = VarAlloc::new();
        let mut flags = FlagAlloc::new();
        let r = vars.fresh();
        let s = vars.fresh();
        let fx = flags.fresh();
        let gx = flags.fresh();
        let f1 = flags.fresh();
        let f2 = flags.fresh();
        let x = Symbol::intern("x");
        let mk = |field_flag: Flag, tail_flag: Flag| {
            Ty::record(
                vec![crate::ty::FieldEntry {
                    name: x,
                    flag: field_flag,
                    ty: Ty::Int,
                }],
                RowTail::Var(r, tail_flag),
            )
        };
        let mut kappa = Ty::fun(mk(fx, f1), mk(gx, f2));
        let mut beta = Cnf::top();
        beta.imply(Lit::pos(f2), Lit::pos(f1));
        let suffix = Row {
            fields: vec![crate::ty::FieldEntry {
                name: Symbol::intern("y"),
                flag: NO_FLAG,
                ty: Ty::Int,
            }],
            tail: RowTail::Var(s, NO_FLAG),
        };
        let mut subst = Subst::new();
        subst.bind_row(r, &suffix);
        let mut env = TyEnv::new();
        let replaced = apply_subst_flow(&subst, &mut kappa, &mut env, &mut beta, &mut flags);
        beta.project_out(
            &replaced
                .kappa
                .iter()
                .chain(&replaced.env)
                .copied()
                .collect(),
        );

        // Each record now has fields {x, y} and tail s; the flow f2→f1
        // is replicated for the y-column and the tail-column.
        let recs: Vec<&Row> = match &kappa {
            Ty::Fun(a, b) => match (a.as_ref(), b.as_ref()) {
                (Ty::Record(ra), Ty::Record(rb)) => vec![ra, rb],
                other => panic!("expected records, got {other:?}"),
            },
            other => panic!("expected function, got {other:?}"),
        };
        let y = Symbol::intern("y");
        let y_in = recs[0].field(y).expect("y spliced into input").flag;
        let y_out = recs[1].field(y).expect("y spliced into output").flag;
        let tail_of = |row: &Row| match row.tail {
            RowTail::Var(v, f) => {
                assert_eq!(v, s);
                f
            }
            RowTail::Closed => panic!("expected open tail"),
        };
        let (t_in, t_out) = (tail_of(recs[0]), tail_of(recs[1]));
        let mut expect = Cnf::top();
        expect.imply(Lit::pos(y_out), Lit::pos(y_in));
        expect.imply(Lit::pos(t_out), Lit::pos(t_in));
        // x-field flags are untouched and unconstrained.
        assert!(beta.equivalent(&expect), "got {beta:?}");
        assert!(!beta.mentions(f1));
        assert!(!beta.mentions(f2));
        assert_eq!(recs[0].field(x).expect("x kept").flag, fx);
        assert_eq!(recs[1].field(x).expect("x kept").flag, gx);
    }

    #[test]
    fn import_scheme_renames_foreign_numbering() {
        // Producing engine: ∀a . a.f0 → a.f1 with stored flow f1 → f0.
        let mut pvars = VarAlloc::new();
        let mut pflags = FlagAlloc::new();
        let a = pvars.fresh();
        let f0 = pflags.fresh();
        let f1 = pflags.fresh();
        let mut scheme = Scheme::new(vec![a], Ty::fun(Ty::var(a, f0), Ty::var(a, f1)));
        scheme.flow.imply(Lit::pos(f1), Lit::pos(f0));

        // Consuming engine that already allocated the same numbers and
        // pinned a local fact on the colliding flag.
        let mut cvars = VarAlloc::new();
        let mut cflags = FlagAlloc::new();
        let local_var = cvars.fresh();
        let local_f0 = cflags.fresh();
        let local_f1 = cflags.fresh();
        let mut beta = Cnf::top();
        beta.assert_lit(Lit::neg(local_f0));

        let imported = import_scheme(&scheme, &mut cvars, &mut cflags);
        for f in imported.ty.flags() {
            assert!(f != local_f0 && f != local_f1, "imported flag collides");
        }
        assert!(
            imported.vars.iter().all(|&v| v != local_var),
            "imported variable collides"
        );

        // Instantiating the import copies its flow onto fresh flags
        // without entangling the consumer's pinned local fact.
        let inst = instantiate(&imported, &mut cvars, &mut cflags, &mut beta);
        let (g0, g1) = match &inst {
            Ty::Fun(i, o) => match (i.as_ref(), o.as_ref()) {
                (Ty::Var(_, g0), Ty::Var(_, g1)) => (*g0, *g1),
                other => panic!("expected vars, got {other:?}"),
            },
            other => panic!("expected function, got {other:?}"),
        };
        let mut q = beta.clone();
        q.assert_lit(Lit::pos(g1));
        q.assert_lit(Lit::neg(g0));
        assert!(
            !q.is_sat(),
            "imported flow g1→g0 missing after instantiation"
        );
        let mut q = beta.clone();
        q.assert_lit(Lit::pos(g1));
        assert!(
            q.is_sat(),
            "local ¬f0 wrongly captured the imported instance"
        );
    }

    #[test]
    fn instantiate_copies_flow_and_preserves_scheme() {
        // Scheme ∀a . a.f1 → a.f2 with flow f2 → f1 (the identity).
        let mut vars = VarAlloc::new();
        let mut flags = FlagAlloc::new();
        let a = vars.fresh();
        let f1 = flags.fresh();
        let f2 = flags.fresh();
        let scheme = Scheme::new(vec![a], Ty::fun(Ty::var(a, f1), Ty::var(a, f2)));
        let mut beta = Cnf::top();
        beta.imply(Lit::pos(f2), Lit::pos(f1));

        let inst = instantiate(&scheme, &mut vars, &mut flags, &mut beta);
        let (b, g1, g2) = match &inst {
            Ty::Fun(i, o) => match (i.as_ref(), o.as_ref()) {
                (Ty::Var(v1, g1), Ty::Var(v2, g2)) => {
                    assert_eq!(v1, v2);
                    (*v1, *g1, *g2)
                }
                other => panic!("expected vars, got {other:?}"),
            },
            other => panic!("expected function, got {other:?}"),
        };
        assert_ne!(b, a, "quantified variable renamed");
        assert_ne!(g1, f1);
        // Instance has its own flow...
        let mut q = beta.clone();
        q.assert_lit(Lit::pos(g2));
        q.assert_lit(Lit::neg(g1));
        assert!(!q.is_sat(), "instance flow g2→g1 present");
        // ...the scheme keeps its flow...
        let mut q = beta.clone();
        q.assert_lit(Lit::pos(f2));
        q.assert_lit(Lit::neg(f1));
        assert!(!q.is_sat(), "scheme flow f2→f1 survives");
        // ...and the two are independent.
        let mut q = beta.clone();
        q.assert_lit(Lit::pos(f1));
        q.assert_lit(Lit::neg(g1));
        assert!(q.is_sat(), "scheme and instance flags are decoupled");
    }

    #[test]
    fn two_instantiations_are_independent() {
        let mut vars = VarAlloc::new();
        let mut flags = FlagAlloc::new();
        let a = vars.fresh();
        let f1 = flags.fresh();
        let scheme = Scheme::new(vec![a], Ty::var(a, f1));
        let mut beta = Cnf::top();
        let i1 = instantiate(&scheme, &mut vars, &mut flags, &mut beta);
        let i2 = instantiate(&scheme, &mut vars, &mut flags, &mut beta);
        let flag_of = |t: &Ty| match t {
            Ty::Var(_, f) => *f,
            other => panic!("expected var, got {other:?}"),
        };
        let (g1, g2) = (flag_of(&i1), flag_of(&i2));
        assert_ne!(g1, g2);
        let mut q = beta.clone();
        q.assert_lit(Lit::pos(g1));
        q.assert_lit(Lit::neg(g2));
        assert!(q.is_sat(), "independent uses may disagree about fields");
    }

    #[test]
    fn compact_flow_drops_stale_flags() {
        let mut flags = FlagAlloc::new();
        let fa = flags.fresh();
        let fb = flags.fresh();
        let fdead = flags.fresh();
        let mut beta = Cnf::top();
        beta.imply(Lit::pos(fa), Lit::pos(fdead));
        beta.imply(Lit::pos(fdead), Lit::pos(fb));
        let kappa = Ty::fun(Ty::var(Var(0), fa), Ty::var(Var(0), fb));
        let env = TyEnv::new();
        compact_flow(&mut beta, &env, &kappa);
        assert!(!beta.mentions(fdead));
        let mut expect = Cnf::top();
        expect.imply(Lit::pos(fa), Lit::pos(fb));
        assert!(beta.equivalent(&expect));
    }
}
