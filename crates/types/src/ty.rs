//! Type terms: monotypes `M`, polytypes `P`, and record polytypes `PR`.
//!
//! One representation serves all three universes of the paper:
//!
//! * `PR` (record polymorphic types with flow): every type-variable
//!   occurrence and every record field carries a [`Flag`];
//! * `P` (plain polytypes): the same terms with every flag set to the
//!   [`NO_FLAG`] sentinel — this is the image of the projection `⇓RP`;
//! * `M` (monotypes): `P` terms without variables and with closed rows.

use rowpoly_boolfun::{Flag, FlagAlloc};
use rowpoly_lang::FieldName;
use std::collections::BTreeSet;
use std::fmt;

/// A type or row variable.
///
/// Kinds are not tracked explicitly: a variable used as a row tail is a row
/// variable, one used as a type is a type variable. Unification reports a
/// kind clash as a plain mismatch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Allocator of fresh type variables; one per inference session.
#[derive(Clone, Debug, Default)]
pub struct VarAlloc {
    next: u32,
}

impl VarAlloc {
    /// Creates an allocator with no variables allocated.
    pub fn new() -> VarAlloc {
        VarAlloc { next: 0 }
    }

    /// Returns a fresh variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var(self.next);
        self.next = self
            .next
            .checked_add(1)
            .expect("type-variable space exhausted");
        v
    }

    /// Number of variables allocated so far.
    pub fn count(&self) -> usize {
        self.next as usize
    }
}

/// Sentinel flag used by the flow-free universe `P` (the image of `⇓RP`).
///
/// Types whose flags are all `NO_FLAG` are *skeletons*; the Milner–Mycroft
/// inference without field tracking works entirely on skeletons.
pub const NO_FLAG: Flag = Flag(u32::MAX);

/// A type term.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Ty {
    /// A type-variable occurrence `a.fa`. Distinct occurrences of the same
    /// variable carry distinct flags.
    Var(Var, Flag),
    /// The integer base type.
    Int,
    /// The string base type.
    Str,
    /// Homogeneous lists `[t]`.
    List(Box<Ty>),
    /// Functions `t1 → t2`.
    Fun(Box<Ty>, Box<Ty>),
    /// Records `{N1.f1 : t1, …, Nn.fn : tn, ρ}`.
    Record(Row),
}

/// A record row: fields sorted by name plus a tail.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Row {
    /// Fields, strictly sorted by name.
    pub fields: Vec<FieldEntry>,
    /// The row tail: a row variable or closed.
    pub tail: RowTail,
}

/// One record field `N.f : t`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldEntry {
    /// Field name.
    pub name: FieldName,
    /// Existence flag (`NO_FLAG` in skeletons).
    pub flag: Flag,
    /// Field type.
    pub ty: Ty,
}

/// Tail of a row.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RowTail {
    /// An extensible row `a.fa`: the variable stands for the remaining
    /// fields, the flag for their (uniform) existence.
    Var(Var, Flag),
    /// A closed row: exactly the listed fields (monotypes only).
    Closed,
}

impl Ty {
    /// Shorthand for a flagged variable occurrence.
    pub fn var(v: Var, f: Flag) -> Ty {
        Ty::Var(v, f)
    }

    /// Shorthand for a skeleton variable occurrence.
    pub fn svar(v: Var) -> Ty {
        Ty::Var(v, NO_FLAG)
    }

    /// Shorthand for a function type.
    pub fn fun(a: Ty, b: Ty) -> Ty {
        Ty::Fun(Box::new(a), Box::new(b))
    }

    /// Shorthand for a list type.
    pub fn list(t: Ty) -> Ty {
        Ty::List(Box::new(t))
    }

    /// Builds a record from unsorted fields and a tail.
    ///
    /// # Panics
    ///
    /// Panics if two fields share a name.
    pub fn record(mut fields: Vec<FieldEntry>, tail: RowTail) -> Ty {
        fields.sort_by_key(|f| f.name);
        assert!(
            fields.windows(2).all(|w| w[0].name != w[1].name),
            "record with duplicate field"
        );
        Ty::Record(Row { fields, tail })
    }

    /// Free variables in first-occurrence order (depth-first, left to
    /// right), without duplicates.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        self.collect_vars(&mut seen, &mut out);
        out
    }

    /// Free variables as a set.
    pub fn vars_set(&self) -> BTreeSet<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        self.collect_vars(&mut seen, &mut out);
        seen
    }

    fn collect_vars(&self, seen: &mut BTreeSet<Var>, out: &mut Vec<Var>) {
        match self {
            Ty::Var(v, _) => {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
            Ty::Int | Ty::Str => {}
            Ty::List(t) => t.collect_vars(seen, out),
            Ty::Fun(a, b) => {
                a.collect_vars(seen, out);
                b.collect_vars(seen, out);
            }
            Ty::Record(row) => {
                for f in &row.fields {
                    f.ty.collect_vars(seen, out);
                }
                if let RowTail::Var(v, _) = row.tail {
                    if seen.insert(v) {
                        out.push(v);
                    }
                }
            }
        }
    }

    /// Whether the variable `v` occurs in this type (occurs check).
    pub fn mentions_var(&self, v: Var) -> bool {
        match self {
            Ty::Var(w, _) => *w == v,
            Ty::Int | Ty::Str => false,
            Ty::List(t) => t.mentions_var(v),
            Ty::Fun(a, b) => a.mentions_var(v) || b.mentions_var(v),
            Ty::Record(row) => {
                row.fields.iter().any(|f| f.ty.mentions_var(v))
                    || matches!(row.tail, RowTail::Var(w, _) if w == v)
            }
        }
    }

    /// All flags in the term, in `*t+` traversal order but without the
    /// polarity bookkeeping (see [`crate::flags::flag_lits`] for the real
    /// `*t+`). `NO_FLAG` sentinels are skipped.
    pub fn flags(&self) -> Vec<Flag> {
        let mut out = Vec::new();
        self.collect_flags(&mut out);
        out
    }

    fn collect_flags(&self, out: &mut Vec<Flag>) {
        match self {
            Ty::Var(_, f) => {
                if *f != NO_FLAG {
                    out.push(*f);
                }
            }
            Ty::Int | Ty::Str => {}
            Ty::List(t) => t.collect_flags(out),
            Ty::Fun(a, b) => {
                a.collect_flags(out);
                b.collect_flags(out);
            }
            Ty::Record(row) => {
                for f in &row.fields {
                    if f.flag != NO_FLAG {
                        out.push(f.flag);
                    }
                }
                if let RowTail::Var(_, f) = row.tail {
                    if f != NO_FLAG {
                        out.push(f);
                    }
                }
                for f in &row.fields {
                    f.ty.collect_flags(out);
                }
            }
        }
    }

    /// The projection `⇓RP`: the same term with every flag replaced by
    /// [`NO_FLAG`].
    pub fn strip(&self) -> Ty {
        self.map_flags(&mut |_| NO_FLAG)
    }

    /// The decoration `⇑RP`: the same term with every flag replaced by a
    /// fresh one. `⇑RP(⇓RP(t))` renames all flags of `t`.
    pub fn decorate(&self, flags: &mut FlagAlloc) -> Ty {
        self.map_flags(&mut |_| flags.fresh())
    }

    /// Structural map over all flag positions.
    pub fn map_flags(&self, f: &mut impl FnMut(Flag) -> Flag) -> Ty {
        match self {
            Ty::Var(v, fl) => Ty::Var(*v, f(*fl)),
            Ty::Int => Ty::Int,
            Ty::Str => Ty::Str,
            Ty::List(t) => Ty::List(Box::new(t.map_flags(f))),
            Ty::Fun(a, b) => Ty::Fun(Box::new(a.map_flags(f)), Box::new(b.map_flags(f))),
            Ty::Record(row) => Ty::Record(Row {
                fields: row
                    .fields
                    .iter()
                    .map(|fe| FieldEntry {
                        name: fe.name,
                        flag: f(fe.flag),
                        ty: fe.ty.map_flags(f),
                    })
                    .collect(),
                tail: match row.tail {
                    RowTail::Var(v, fl) => RowTail::Var(v, f(fl)),
                    RowTail::Closed => RowTail::Closed,
                },
            }),
        }
    }

    /// Whether all flags are `NO_FLAG` (the term is a `P` skeleton).
    pub fn is_skeleton(&self) -> bool {
        self.flags().is_empty()
    }

    /// Whether the term has no variables and only closed rows (a monotype).
    pub fn is_monotype(&self) -> bool {
        match self {
            Ty::Var(..) => false,
            Ty::Int | Ty::Str => true,
            Ty::List(t) => t.is_monotype(),
            Ty::Fun(a, b) => a.is_monotype() && b.is_monotype(),
            Ty::Record(row) => {
                matches!(row.tail, RowTail::Closed) && row.fields.iter().all(|f| f.ty.is_monotype())
            }
        }
    }
}

impl Row {
    /// Looks up a field by name.
    pub fn field(&self, name: FieldName) -> Option<&FieldEntry> {
        self.fields
            .binary_search_by(|f| f.name.cmp(&name))
            .ok()
            .map(|i| &self.fields[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_lang::Symbol;

    fn field(name: &str, flag: u32, ty: Ty) -> FieldEntry {
        FieldEntry {
            name: Symbol::intern(name),
            flag: Flag(flag),
            ty,
        }
    }

    #[test]
    fn record_sorts_fields() {
        let t = Ty::record(
            vec![field("zed", 0, Ty::Int), field("abc", 1, Ty::Str)],
            RowTail::Closed,
        );
        match &t {
            Ty::Record(row) => {
                assert_eq!(row.fields[0].name, Symbol::intern("abc"));
                assert_eq!(row.fields[1].name, Symbol::intern("zed"));
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_fields_panic() {
        let _ = Ty::record(
            vec![field("a", 0, Ty::Int), field("a", 1, Ty::Str)],
            RowTail::Closed,
        );
    }

    #[test]
    fn vars_in_first_occurrence_order() {
        let (a, b) = (Var(0), Var(1));
        let t = Ty::fun(Ty::svar(b), Ty::fun(Ty::svar(a), Ty::svar(b)));
        assert_eq!(t.vars(), vec![b, a]);
    }

    #[test]
    fn strip_and_decorate() {
        let mut flags = FlagAlloc::new();
        let t = Ty::record(
            vec![field("x", 3, Ty::var(Var(0), Flag(4)))],
            RowTail::Var(Var(1), Flag(5)),
        );
        let stripped = t.strip();
        assert!(stripped.is_skeleton());
        let decorated = stripped.decorate(&mut flags);
        assert_eq!(decorated.flags().len(), 3);
        assert_eq!(decorated.strip(), stripped);
    }

    #[test]
    fn flags_order_fields_then_tail_then_types() {
        // {N.f0 : a.f2, b.f1} — order per Def. 1: field flags, tail flag,
        // then field types.
        let t = Ty::record(
            vec![field("n", 0, Ty::var(Var(0), Flag(2)))],
            RowTail::Var(Var(1), Flag(1)),
        );
        assert_eq!(t.flags(), vec![Flag(0), Flag(1), Flag(2)]);
    }

    #[test]
    fn mentions_var_sees_row_tail() {
        let t = Ty::record(vec![], RowTail::Var(Var(7), NO_FLAG));
        assert!(t.mentions_var(Var(7)));
        assert!(!t.mentions_var(Var(8)));
    }

    #[test]
    fn monotype_detection() {
        assert!(Ty::Int.is_monotype());
        assert!(Ty::fun(Ty::Int, Ty::Str).is_monotype());
        assert!(!Ty::svar(Var(0)).is_monotype());
        let open = Ty::record(vec![], RowTail::Var(Var(0), NO_FLAG));
        assert!(!open.is_monotype());
        let closed = Ty::record(vec![], RowTail::Closed);
        assert!(closed.is_monotype());
    }
}
