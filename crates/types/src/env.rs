//! Type environments and type schemes.

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use rowpoly_boolfun::{Flag, Lit};
use rowpoly_lang::Symbol;

use crate::flags::flag_lits;
use crate::subst::Subst;
use crate::ty::{Ty, Var};

/// A type scheme `∀a1 … an . t`.
///
/// Besides the listed type variables, *all flags occurring in `t`* are
/// implicitly generalized: instantiation refreshes every flag of the body
/// and duplicates the flow β restricted to those flags (the expansion of
/// Definition 2). This mirrors how `applyS` decorates each inserted copy
/// with fresh flags and is what keeps separate uses of a let-bound
/// function independent in their field-existence constraints.
#[derive(Clone, Debug, PartialEq)]
pub struct Scheme {
    /// Quantified type/row variables.
    pub vars: Vec<Var>,
    /// The body, a `PR` term.
    pub ty: Ty,
    /// The scheme's own flow: β projected onto the flags of `ty` when the
    /// definition was finished (empty for local lets, whose flow stays in
    /// the working β). Instantiation rename-copies these clauses, so the
    /// working β never has to carry the flows of all earlier definitions
    /// — this is the paper's "the type inferred for a function is thus
    /// concise" made operational.
    pub flow: rowpoly_boolfun::Cnf,
}

impl Scheme {
    /// A scheme from quantified variables and a body (no stored flow).
    pub fn new(vars: Vec<Var>, ty: Ty) -> Scheme {
        Scheme {
            vars,
            ty,
            flow: rowpoly_boolfun::Cnf::top(),
        }
    }

    /// A scheme quantifying nothing.
    pub fn mono(ty: Ty) -> Scheme {
        Scheme::new(Vec::new(), ty)
    }

    /// The free (unquantified) variables of the scheme.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut vs = self.ty.vars_set();
        for v in &self.vars {
            vs.remove(v);
        }
        vs
    }
}

/// How a program variable is bound in the environment.
#[derive(Clone, Debug, PartialEq)]
pub enum Binding {
    /// λ-bound: a monomorphic `PR` type; uses are related to the binding
    /// occurrence by flag implications (rule (VAR)).
    Mono(Ty),
    /// let-bound: a scheme; uses instantiate it (rule (VAR-LET)).
    Poly(Scheme),
}

impl Binding {
    /// The underlying type term (scheme body for `Poly`).
    pub fn ty(&self) -> &Ty {
        match self {
            Binding::Mono(t) => t,
            Binding::Poly(s) => &s.ty,
        }
    }

    /// Free variables of the binding.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Binding::Mono(t) => t.vars_set(),
            Binding::Poly(s) => s.free_vars(),
        }
    }
}

static ENV_VERSION: AtomicU64 = AtomicU64::new(1);

fn next_version() -> u64 {
    ENV_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// The frozen outer layer of an environment: top-level definitions that
/// no longer change during the current definition's inference.
///
/// Freezing caches the layer's flag set and free variables once, so the
/// per-AST-node operations of the inference (stale-flag projection,
/// environment meets, flag-sequence equations) only ever walk the small
/// *local* layer — this is what keeps whole-program inference from
/// degrading quadratically in the number of definitions.
#[derive(Debug, Default)]
struct GlobalLayer {
    map: BTreeMap<Symbol, Binding>,
    /// All flags occurring in the layer.
    flags: BTreeSet<Flag>,
    /// All free type variables of the layer (top-level schemes are almost
    /// always closed, so this is usually tiny — it holds the variables of
    /// pre-bound free program variables).
    free_vars: BTreeSet<Var>,
}

/// A type environment `ρ`, mapping program variables to bindings.
///
/// Environments are cheap to clone and carry a *version tag*: every
/// mutation produces a fresh version, so two environments with equal
/// versions and the same global layer are identical. This implements the
/// optimisation described in Section 6 of the paper, where the meet of
/// two environments short-circuits when both carry the same version.
///
/// The environment is layered: [`TyEnv::freeze`] moves the local bindings
/// into the shared global layer (used by the driver between top-level
/// definitions). Local lookups shadow global ones.
#[derive(Clone, Debug)]
pub struct TyEnv {
    global: Rc<GlobalLayer>,
    local: Rc<BTreeMap<Symbol, Binding>>,
    version: u64,
}

impl Default for TyEnv {
    fn default() -> Self {
        TyEnv::new()
    }
}

impl TyEnv {
    /// The empty environment.
    pub fn new() -> TyEnv {
        TyEnv {
            global: Rc::new(GlobalLayer::default()),
            local: Rc::new(BTreeMap::new()),
            version: next_version(),
        }
    }

    /// The version tag; equal versions (with the same global layer) imply
    /// identical environments.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether the two environments are known identical without comparing
    /// contents.
    pub fn same(&self, other: &TyEnv) -> bool {
        Rc::ptr_eq(&self.global, &other.global)
            && (Rc::ptr_eq(&self.local, &other.local) || self.version == other.version)
    }

    /// Whether the two environments share their global layer (always true
    /// for environments evolved within one definition).
    pub fn same_global(&self, other: &TyEnv) -> bool {
        Rc::ptr_eq(&self.global, &other.global)
    }

    /// Looks up a binding (local layer shadows global).
    pub fn get(&self, name: Symbol) -> Option<&Binding> {
        self.local.get(&name).or_else(|| self.global.map.get(&name))
    }

    /// Looks up a binding in the local layer only (used to save/restore
    /// shadowed bindings without duplicating global entries locally).
    pub fn get_local(&self, name: Symbol) -> Option<&Binding> {
        self.local.get(&name)
    }

    /// Whether `name` is bound.
    pub fn contains(&self, name: Symbol) -> bool {
        self.local.contains_key(&name) || self.global.map.contains_key(&name)
    }

    /// Adds or replaces a binding in the local layer.
    pub fn insert(&mut self, name: Symbol, binding: Binding) {
        Rc::make_mut(&mut self.local).insert(name, binding);
        self.version = next_version();
    }

    /// Removes a local binding (the projection `∃x` on environments). A
    /// shadowed global binding becomes visible again; global bindings
    /// themselves cannot be removed.
    pub fn remove(&mut self, name: Symbol) -> Option<Binding> {
        let removed = Rc::make_mut(&mut self.local).remove(&name);
        if removed.is_some() {
            self.version = next_version();
        }
        removed
    }

    /// Number of bindings (local + non-shadowed global).
    pub fn len(&self) -> usize {
        let shadowed = self
            .local
            .keys()
            .filter(|k| self.global.map.contains_key(k))
            .count();
        self.local.len() + self.global.map.len() - shadowed
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty() && self.global.map.is_empty()
    }

    /// Freezes the local layer into the global one, extending the cached
    /// flag and free-variable sets. Called by the driver after each
    /// top-level definition.
    pub fn freeze(&mut self) {
        if self.local.is_empty() {
            return;
        }
        let mut global = GlobalLayer {
            map: self.global.map.clone(),
            flags: self.global.flags.clone(),
            free_vars: self.global.free_vars.clone(),
        };
        for (name, binding) in self.local.iter() {
            global.flags.extend(binding.ty().flags());
            global.free_vars.extend(binding.free_vars());
            global.map.insert(*name, binding.clone());
        }
        self.global = Rc::new(global);
        self.local = Rc::new(BTreeMap::new());
        self.version = next_version();
    }

    /// Iterates *all* bindings in symbol order (global entries shadowed by
    /// local ones are skipped).
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Binding)> {
        // Both maps are sorted; merge them, preferring local.
        MergedIter {
            local: self.local.iter().peekable(),
            global: self.global.map.iter().peekable(),
        }
    }

    /// Iterates the local layer only.
    pub fn iter_local(&self) -> impl Iterator<Item = (Symbol, &Binding)> {
        self.local.iter().map(|(s, b)| (*s, b))
    }

    /// Mutable iteration over the local layer (bumps the version).
    pub fn iter_local_mut(&mut self) -> impl Iterator<Item = (Symbol, &mut Binding)> {
        self.version = next_version();
        Rc::make_mut(&mut self.local)
            .iter_mut()
            .map(|(s, b)| (*s, b))
    }

    /// Promotes a global binding into the local layer (so it can be
    /// rewritten by a substitution that touches its free variables) and
    /// returns whether the name was global.
    pub fn promote(&mut self, name: Symbol) -> bool {
        if self.local.contains_key(&name) {
            return false;
        }
        match self.global.map.get(&name) {
            Some(b) => {
                let b = b.clone();
                self.insert(name, b);
                true
            }
            None => false,
        }
    }

    /// The free variables of the global layer (cached).
    pub fn global_free_vars(&self) -> &BTreeSet<Var> {
        &self.global.free_vars
    }

    /// The flags of the global layer (cached). Note that promoted-and-
    /// rewritten bindings shadow global entries, so a *stale* superset of
    /// the truly visible global flags — safe for liveness (projection
    /// keeps at most too much, never too little).
    pub fn global_flags(&self) -> &BTreeSet<Flag> {
        &self.global.flags
    }

    /// Global bindings whose free variables intersect the domain of `s`
    /// (candidates for promotion before applying the substitution).
    pub fn globals_touched_by(&self, s: &Subst) -> Vec<Symbol> {
        if self.global.free_vars.iter().all(|v| !s.binds(*v)) {
            return Vec::new();
        }
        self.global
            .map
            .iter()
            .filter(|(k, b)| {
                !self.local.contains_key(k) && b.free_vars().iter().any(|v| s.binds(*v))
            })
            .map(|(k, _)| *k)
            .collect()
    }

    /// Free variables of the whole environment.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = self.global.free_vars.clone();
        for (_, b) in self.iter_local() {
            out.extend(b.free_vars());
        }
        out
    }

    /// All flags of the local layer, in binding order.
    pub fn local_flags(&self) -> Vec<Flag> {
        let mut out = Vec::new();
        for (_, b) in self.iter_local() {
            out.extend(b.ty().flags());
        }
        out
    }

    /// All flags occurring in the environment (including scheme bodies).
    pub fn flags(&self) -> BTreeSet<Flag> {
        let mut out = self.global.flags.clone();
        out.extend(self.local_flags());
        out
    }

    /// The `*ρ+X` flag sequence of the whole environment, in symbol
    /// order.
    pub fn flag_seq(&self) -> Vec<Lit> {
        let mut out = Vec::new();
        for (_, b) in self.iter() {
            out.extend(flag_lits(b.ty()));
        }
        out
    }

    /// Applies a substitution to every binding (skeleton-level, preserving
    /// flags on untouched structure). Used by the flow-free inference; the
    /// flow inference uses `applyS` instead. Bindings not mentioning the
    /// substitution's domain are left untouched (and if nothing is
    /// touched, the version is preserved).
    pub fn apply_subst(&mut self, subst: &Subst) {
        if subst.is_empty() {
            return;
        }
        for name in self.globals_touched_by(subst) {
            self.promote(name);
        }
        let touched: Vec<Symbol> = self
            .iter_local()
            .filter(|(_, b)| b.free_vars().iter().any(|v| subst.binds(*v)))
            .map(|(s, _)| s)
            .collect();
        if touched.is_empty() {
            return;
        }
        let local = Rc::make_mut(&mut self.local);
        for name in touched {
            let b = local.get_mut(&name).expect("touched binding exists");
            match b {
                Binding::Mono(t) => *t = subst.apply(t),
                Binding::Poly(s) => s.ty = subst.apply(&s.ty),
            }
        }
        self.version = next_version();
    }
}

struct MergedIter<'a> {
    local: std::iter::Peekable<std::collections::btree_map::Iter<'a, Symbol, Binding>>,
    global: std::iter::Peekable<std::collections::btree_map::Iter<'a, Symbol, Binding>>,
}

impl<'a> Iterator for MergedIter<'a> {
    type Item = (Symbol, &'a Binding);

    fn next(&mut self) -> Option<(Symbol, &'a Binding)> {
        match (self.local.peek(), self.global.peek()) {
            (Some((ls, _)), Some((gs, _))) => match ls.cmp(gs) {
                std::cmp::Ordering::Less => self.local.next().map(|(s, b)| (*s, b)),
                std::cmp::Ordering::Greater => self.global.next().map(|(s, b)| (*s, b)),
                std::cmp::Ordering::Equal => {
                    // Local shadows global.
                    self.global.next();
                    self.local.next().map(|(s, b)| (*s, b))
                }
            },
            (Some(_), None) => self.local.next().map(|(s, b)| (*s, b)),
            (None, Some(_)) => self.global.next().map(|(s, b)| (*s, b)),
            (None, None) => None,
        }
    }
}

/// Generalizes `ty` over the variables not free in `env`:
/// `∀(vars(ty) \ vars(env)) . ty` (the (LETREC) rule's scheme).
pub fn generalize(env: &TyEnv, ty: &Ty) -> Scheme {
    let global_fv = env.global_free_vars();
    let mut env_vars: BTreeSet<Var> = BTreeSet::new();
    for (_, b) in env.iter_local() {
        env_vars.extend(b.free_vars());
    }
    let vars: Vec<Var> = ty
        .vars()
        .into_iter()
        .filter(|v| !env_vars.contains(v) && !global_fv.contains(v))
        .collect();
    Scheme::new(vars, ty.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::{VarAlloc, NO_FLAG};
    use rowpoly_boolfun::FlagAlloc;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn insert_and_lookup() {
        let mut env = TyEnv::new();
        env.insert(sym("x"), Binding::Mono(Ty::Int));
        assert_eq!(env.get(sym("x")), Some(&Binding::Mono(Ty::Int)));
        assert_eq!(env.get(sym("y")), None);
    }

    #[test]
    fn versions_distinguish_modified_envs() {
        let mut env = TyEnv::new();
        env.insert(sym("x"), Binding::Mono(Ty::Int));
        let snapshot = env.clone();
        assert!(env.same(&snapshot));
        env.insert(sym("y"), Binding::Mono(Ty::Str));
        assert!(!env.same(&snapshot));
        assert!(
            snapshot.get(sym("y")).is_none(),
            "copy-on-write isolates the clone"
        );
    }

    #[test]
    fn freeze_moves_bindings_to_global() {
        let mut flags = FlagAlloc::new();
        let f = flags.fresh();
        let mut env = TyEnv::new();
        env.insert(sym("g"), Binding::Mono(Ty::var(Var(0), f)));
        env.freeze();
        assert!(env.iter_local().next().is_none());
        assert!(env.get(sym("g")).is_some());
        assert!(env.global_flags().contains(&f));
        assert!(env.global_free_vars().contains(&Var(0)));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn local_shadows_global_and_remove_unshadows() {
        let mut env = TyEnv::new();
        env.insert(sym("x"), Binding::Mono(Ty::Int));
        env.freeze();
        env.insert(sym("x"), Binding::Mono(Ty::Str));
        assert_eq!(env.get(sym("x")), Some(&Binding::Mono(Ty::Str)));
        assert_eq!(env.len(), 1, "shadowed binding counted once");
        env.remove(sym("x"));
        assert_eq!(env.get(sym("x")), Some(&Binding::Mono(Ty::Int)));
    }

    #[test]
    fn merged_iter_in_symbol_order() {
        let mut env = TyEnv::new();
        env.insert(sym("b"), Binding::Mono(Ty::Int));
        env.freeze();
        env.insert(sym("a"), Binding::Mono(Ty::Str));
        env.insert(sym("c"), Binding::Mono(Ty::Str));
        let keys: Vec<String> = env.iter().map(|(s, _)| s.to_string()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn promote_pulls_global_into_local() {
        let mut env = TyEnv::new();
        env.insert(sym("x"), Binding::Mono(Ty::svar(Var(3))));
        env.freeze();
        assert!(env.promote(sym("x")));
        assert!(!env.promote(sym("x")), "already local");
        assert!(!env.promote(sym("nope")));
        assert!(env.iter_local().any(|(s, _)| s == sym("x")));
    }

    #[test]
    fn generalize_quantifies_only_local_vars() {
        let mut vars = VarAlloc::new();
        let (a, b) = (vars.fresh(), vars.fresh());
        let mut env = TyEnv::new();
        env.insert(sym("x"), Binding::Mono(Ty::svar(a)));
        let scheme = generalize(&env, &Ty::fun(Ty::svar(a), Ty::svar(b)));
        assert_eq!(scheme.vars, vec![b]);
    }

    #[test]
    fn generalize_respects_frozen_free_vars() {
        let mut vars = VarAlloc::new();
        let (a, b) = (vars.fresh(), vars.fresh());
        let mut env = TyEnv::new();
        env.insert(sym("x"), Binding::Mono(Ty::svar(a)));
        env.freeze();
        let scheme = generalize(&env, &Ty::fun(Ty::svar(a), Ty::svar(b)));
        assert_eq!(scheme.vars, vec![b], "frozen free vars are not quantified");
    }

    #[test]
    fn apply_subst_rewrites_only_touched_bindings() {
        let mut vars = VarAlloc::new();
        let a = vars.fresh();
        let mut env = TyEnv::new();
        env.insert(sym("x"), Binding::Mono(Ty::svar(a)));
        env.insert(sym("y"), Binding::Mono(Ty::Int));
        let before = env.version();
        let mut s = Subst::new();
        s.bind_ty(a, &Ty::Int);
        env.apply_subst(&s);
        assert_eq!(env.get(sym("x")), Some(&Binding::Mono(Ty::Int)));
        assert_ne!(env.version(), before);

        // A substitution touching nothing preserves the version.
        let before = env.version();
        let mut s2 = Subst::new();
        s2.bind_ty(vars.fresh(), &Ty::Str);
        env.apply_subst(&s2);
        assert_eq!(env.version(), before, "untouched env keeps its version");
    }

    #[test]
    fn apply_subst_promotes_touched_globals() {
        let mut vars = VarAlloc::new();
        let a = vars.fresh();
        let mut env = TyEnv::new();
        env.insert(sym("free"), Binding::Mono(Ty::svar(a)));
        env.freeze();
        let mut s = Subst::new();
        s.bind_ty(a, &Ty::Int);
        env.apply_subst(&s);
        assert_eq!(env.get(sym("free")), Some(&Binding::Mono(Ty::Int)));
        assert!(env.iter_local().any(|(s, _)| s == sym("free")), "promoted");
    }

    #[test]
    fn scheme_free_vars_exclude_quantified() {
        let s = Scheme::new(vec![Var(0)], Ty::fun(Ty::svar(Var(0)), Ty::svar(Var(1))));
        assert_eq!(s.free_vars(), [Var(1)].into_iter().collect());
    }

    #[test]
    fn flag_seq_in_symbol_order() {
        let mut flags = FlagAlloc::new();
        let (f1, f2) = (flags.fresh(), flags.fresh());
        let mut env = TyEnv::new();
        env.insert(sym("zz"), Binding::Mono(Ty::var(Var(0), f1)));
        env.insert(sym("aa"), Binding::Mono(Ty::var(Var(1), f2)));
        assert_eq!(env.flag_seq(), vec![Lit::pos(f2), Lit::pos(f1)]);
        let _ = NO_FLAG;
    }

    #[test]
    fn env_flags_include_scheme_bodies() {
        let mut flags = FlagAlloc::new();
        let f = flags.fresh();
        let mut env = TyEnv::new();
        env.insert(
            sym("f"),
            Binding::Poly(Scheme::new(vec![Var(0)], Ty::var(Var(0), f))),
        );
        assert!(env.flags().contains(&f));
    }
}
