//! Unification over `⇓RP`-skeletons, computing most general unifiers.
//!
//! Flags are ignored entirely: two types unify iff their skeletons do, as
//! in the paper where every rule first computes
//! `σ = mgu(⇓RP(…), ⇓RP(…))` and then transports the flows with `applyS`.
//! Rows unify in Rémy's style: common fields unify point-wise, fields
//! missing on one side are pushed into the other side's row variable
//! (failing on closed rows), with a fresh common tail.

use rowpoly_lang::FieldName;
use std::collections::{BTreeSet, HashMap};

use crate::subst::Subst;
use crate::ty::{FieldEntry, Row, RowTail, Ty, Var, VarAlloc, NO_FLAG};

/// Why unification failed.
#[derive(Clone, Debug, PartialEq)]
pub enum UnifyError {
    /// Binding a row variable would splice a field into a row that
    /// already has it (two rows sharing a tail variable demand
    /// contradictory extensions).
    RowFieldClash {
        /// The field that would be duplicated.
        field: FieldName,
    },
    /// Constructor clash, e.g. `Int` against `a → b`.
    Mismatch {
        /// The left-hand type at the clash.
        left: Ty,
        /// The right-hand type at the clash.
        right: Ty,
    },
    /// The occurs check failed: binding would build an infinite type.
    Occurs {
        /// The variable about to be bound.
        var: Var,
        /// The type it occurs in.
        ty: Ty,
    },
    /// A closed record lacks a required field.
    MissingField {
        /// The missing field.
        field: FieldName,
        /// The closed record type.
        record: Ty,
    },
}

impl std::fmt::Display for UnifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnifyError::Mismatch { left, right } => {
                write!(f, "cannot unify `{left:?}` with `{right:?}`")
            }
            UnifyError::Occurs { var, ty } => {
                write!(f, "infinite type: {var:?} occurs in `{ty:?}`")
            }
            UnifyError::MissingField { field, record } => {
                write!(f, "record `{record:?}` has no field `{field}`")
            }
            UnifyError::RowFieldClash { field } => {
                write!(f, "conflicting row extensions for field `{field}`")
            }
        }
    }
}

impl std::error::Error for UnifyError {}

/// Computes the most general unifier of `t1` and `t2` (skeleton-level).
pub fn unify(t1: &Ty, t2: &Ty, vars: &mut VarAlloc) -> Result<Subst, UnifyError> {
    mgu(std::iter::once((t1.clone(), t2.clone())), vars)
}

/// Computes the most general unifier of a set of equations.
pub fn mgu(
    pairs: impl IntoIterator<Item = (Ty, Ty)>,
    vars: &mut VarAlloc,
) -> Result<Subst, UnifyError> {
    let mut subst = Subst::new();
    let mut work: Vec<(Ty, Ty)> = pairs.into_iter().collect();
    // A row variable must not be extended with a field that some row
    // ending in it already has (Rémy's "lacks" constraints). Pre-scan all
    // occurrences; bindings register their fresh tails as they are made.
    let mut lacks: Lacks = HashMap::new();
    for (a, b) in &work {
        collect_lacks(a, &mut lacks);
        collect_lacks(b, &mut lacks);
    }
    // Process in order; `work` is used as a stack of remaining equations.
    work.reverse();
    while let Some((a, b)) = work.pop() {
        let a = subst.apply(&a);
        let b = subst.apply(&b);
        match (a, b) {
            (Ty::Var(x, _), Ty::Var(y, _)) if x == y => {}
            (Ty::Var(x, _), t) | (t, Ty::Var(x, _)) => {
                if t.mentions_var(x) {
                    return Err(UnifyError::Occurs { var: x, ty: t });
                }
                subst.bind_ty(x, &t.strip());
            }
            (Ty::Int, Ty::Int) | (Ty::Str, Ty::Str) => {}
            (Ty::List(a), Ty::List(b)) => work.push((*a, *b)),
            (Ty::Fun(a1, a2), Ty::Fun(b1, b2)) => {
                work.push((*a2, *b2));
                work.push((*a1, *b1));
            }
            (Ty::Record(r1), Ty::Record(r2)) => {
                unify_rows(r1, r2, &mut subst, &mut work, vars, &mut lacks)?;
            }
            (left, right) => return Err(UnifyError::Mismatch { left, right }),
        }
    }
    Ok(subst)
}

type Lacks = HashMap<Var, BTreeSet<FieldName>>;

/// Records, for every row tail variable in `t`, the fields its row
/// already carries.
fn collect_lacks(t: &Ty, lacks: &mut Lacks) {
    match t {
        Ty::Var(..) | Ty::Int | Ty::Str => {}
        Ty::List(inner) => collect_lacks(inner, lacks),
        Ty::Fun(a, b) => {
            collect_lacks(a, lacks);
            collect_lacks(b, lacks);
        }
        Ty::Record(row) => {
            if let RowTail::Var(v, _) = row.tail {
                lacks
                    .entry(v)
                    .or_default()
                    .extend(row.fields.iter().map(|f| f.name));
            }
            for f in &row.fields {
                collect_lacks(&f.ty, lacks);
            }
        }
    }
}

/// Checks that extending row variable `v` with `fields` respects its
/// lacks set.
fn check_lacks(v: Var, fields: &[FieldEntry], lacks: &Lacks) -> Result<(), UnifyError> {
    if let Some(banned) = lacks.get(&v) {
        if let Some(f) = fields.iter().find(|f| banned.contains(&f.name)) {
            return Err(UnifyError::RowFieldClash { field: f.name });
        }
    }
    Ok(())
}

fn unify_rows(
    r1: Row,
    r2: Row,
    subst: &mut Subst,
    work: &mut Vec<(Ty, Ty)>,
    vars: &mut VarAlloc,
    lacks: &mut Lacks,
) -> Result<(), UnifyError> {
    // Sorted merge of the two field lists.
    let mut only1: Vec<FieldEntry> = Vec::new();
    let mut only2: Vec<FieldEntry> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < r1.fields.len() || j < r2.fields.len() {
        match (r1.fields.get(i), r2.fields.get(j)) {
            (Some(f1), Some(f2)) => match f1.name.cmp(&f2.name) {
                std::cmp::Ordering::Equal => {
                    work.push((f1.ty.clone(), f2.ty.clone()));
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    only1.push(f1.clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    only2.push(f2.clone());
                    j += 1;
                }
            },
            (Some(f1), None) => {
                only1.push(f1.clone());
                i += 1;
            }
            (None, Some(f2)) => {
                only2.push(f2.clone());
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    let strip_fields = |fs: &[FieldEntry]| -> Vec<FieldEntry> {
        fs.iter()
            .map(|f| FieldEntry {
                name: f.name,
                flag: NO_FLAG,
                ty: f.ty.strip(),
            })
            .collect()
    };
    match (r1.tail.clone(), r2.tail.clone()) {
        (RowTail::Var(a, _), RowTail::Var(b, _)) if a == b => {
            // Same remaining fields by construction; extra fields on either
            // side cannot be absorbed.
            if let Some(f) = only1.first().or(only2.first()) {
                return Err(UnifyError::Mismatch {
                    left: Ty::Record(Row {
                        fields: vec![f.clone()],
                        tail: RowTail::Var(a, NO_FLAG),
                    }),
                    right: Ty::Record(Row {
                        fields: Vec::new(),
                        tail: RowTail::Var(a, NO_FLAG),
                    }),
                });
            }
        }
        (RowTail::Var(a, _), RowTail::Var(b, _)) => {
            // a absorbs r2's extra fields, b absorbs r1's, sharing a fresh
            // common tail c.
            let c = vars.fresh();
            let suffix_a = Row {
                fields: strip_fields(&only2),
                tail: RowTail::Var(c, NO_FLAG),
            };
            let suffix_b = Row {
                fields: strip_fields(&only1),
                tail: RowTail::Var(c, NO_FLAG),
            };
            check_lacks(a, &suffix_a.fields, lacks)?;
            check_lacks(b, &suffix_b.fields, lacks)?;
            if Ty::Record(suffix_a.clone()).mentions_var(a) {
                return Err(UnifyError::Occurs {
                    var: a,
                    ty: Ty::Record(suffix_a),
                });
            }
            if Ty::Record(suffix_b.clone()).mentions_var(b) {
                return Err(UnifyError::Occurs {
                    var: b,
                    ty: Ty::Record(suffix_b),
                });
            }
            // The common tail inherits both variables' constraints plus
            // every field now known on either side.
            let mut banned: BTreeSet<FieldName> = BTreeSet::new();
            if let Some(s) = lacks.get(&a) {
                banned.extend(s.iter().copied());
            }
            if let Some(s) = lacks.get(&b) {
                banned.extend(s.iter().copied());
            }
            banned.extend(r1.fields.iter().map(|f| f.name));
            banned.extend(r2.fields.iter().map(|f| f.name));
            lacks.insert(c, banned);
            subst.bind_row(a, &suffix_a);
            // `b` may have been touched by binding `a` (it cannot — row
            // bindings only mention `c` and field types — but re-check the
            // occurs condition after closure for safety in debug builds).
            subst.bind_row(b, &suffix_b);
        }
        (RowTail::Var(a, _), RowTail::Closed) => {
            if let Some(f) = only1.first() {
                return Err(UnifyError::MissingField {
                    field: f.name,
                    record: Ty::Record(Row {
                        fields: strip_fields(&r2.fields),
                        tail: RowTail::Closed,
                    }),
                });
            }
            let suffix = Row {
                fields: strip_fields(&only2),
                tail: RowTail::Closed,
            };
            check_lacks(a, &suffix.fields, lacks)?;
            if Ty::Record(suffix.clone()).mentions_var(a) {
                return Err(UnifyError::Occurs {
                    var: a,
                    ty: Ty::Record(suffix),
                });
            }
            subst.bind_row(a, &suffix);
        }
        (RowTail::Closed, RowTail::Var(b, _)) => {
            if let Some(f) = only2.first() {
                return Err(UnifyError::MissingField {
                    field: f.name,
                    record: Ty::Record(Row {
                        fields: strip_fields(&r1.fields),
                        tail: RowTail::Closed,
                    }),
                });
            }
            let suffix = Row {
                fields: strip_fields(&only1),
                tail: RowTail::Closed,
            };
            check_lacks(b, &suffix.fields, lacks)?;
            if Ty::Record(suffix.clone()).mentions_var(b) {
                return Err(UnifyError::Occurs {
                    var: b,
                    ty: Ty::Record(suffix),
                });
            }
            subst.bind_row(b, &suffix);
        }
        (RowTail::Closed, RowTail::Closed) => {
            if let Some(f) = only1.first() {
                return Err(UnifyError::MissingField {
                    field: f.name,
                    record: Ty::Record(Row {
                        fields: strip_fields(&r2.fields),
                        tail: RowTail::Closed,
                    }),
                });
            }
            if let Some(f) = only2.first() {
                return Err(UnifyError::MissingField {
                    field: f.name,
                    record: Ty::Record(Row {
                        fields: strip_fields(&r1.fields),
                        tail: RowTail::Closed,
                    }),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_lang::Symbol;

    fn field(name: &str, ty: Ty) -> FieldEntry {
        FieldEntry {
            name: Symbol::intern(name),
            flag: NO_FLAG,
            ty,
        }
    }

    fn rec(fields: Vec<FieldEntry>, tail: RowTail) -> Ty {
        Ty::record(fields, tail)
    }

    #[test]
    fn unifies_identical_base_types() {
        let mut vars = VarAlloc::new();
        assert!(unify(&Ty::Int, &Ty::Int, &mut vars).unwrap().is_empty());
        assert!(unify(&Ty::Int, &Ty::Str, &mut vars).is_err());
    }

    #[test]
    fn binds_variable_to_type() {
        let mut vars = VarAlloc::new();
        let a = vars.fresh();
        let s = unify(&Ty::svar(a), &Ty::fun(Ty::Int, Ty::Int), &mut vars).unwrap();
        assert_eq!(s.apply(&Ty::svar(a)), Ty::fun(Ty::Int, Ty::Int));
    }

    #[test]
    fn occurs_check_fires() {
        let mut vars = VarAlloc::new();
        let a = vars.fresh();
        let t = Ty::fun(Ty::svar(a), Ty::Int);
        assert!(matches!(
            unify(&Ty::svar(a), &t, &mut vars),
            Err(UnifyError::Occurs { .. })
        ));
    }

    #[test]
    fn function_arguments_unify_pointwise() {
        let mut vars = VarAlloc::new();
        let (a, b) = (vars.fresh(), vars.fresh());
        // a → Int  ~  Str → b
        let s = unify(
            &Ty::fun(Ty::svar(a), Ty::Int),
            &Ty::fun(Ty::Str, Ty::svar(b)),
            &mut vars,
        )
        .unwrap();
        assert_eq!(s.apply(&Ty::svar(a)), Ty::Str);
        assert_eq!(s.apply(&Ty::svar(b)), Ty::Int);
    }

    #[test]
    fn gci_example_from_paper_section_4_2() {
        // gci([a] → [Int], [Int] → a') = [Int] → [Int] (Example in §4.2).
        let mut vars = VarAlloc::new();
        let a = vars.fresh();
        let a2 = vars.fresh();
        let t1 = Ty::fun(Ty::list(Ty::svar(a)), Ty::list(Ty::Int));
        let t2 = Ty::fun(Ty::list(Ty::Int), Ty::svar(a2));
        let s = unify(&t1, &t2, &mut vars).unwrap();
        assert_eq!(s.apply(&t1), Ty::fun(Ty::list(Ty::Int), Ty::list(Ty::Int)));
        assert_eq!(s.apply(&t2), s.apply(&t1));
    }

    #[test]
    fn rows_with_disjoint_fields_extend_each_other() {
        let mut vars = VarAlloc::new();
        let (r1, r2) = (vars.fresh(), vars.fresh());
        // {x : Int, r1} ~ {y : Str, r2}
        let t1 = rec(vec![field("x", Ty::Int)], RowTail::Var(r1, NO_FLAG));
        let t2 = rec(vec![field("y", Ty::Str)], RowTail::Var(r2, NO_FLAG));
        let s = unify(&t1, &t2, &mut vars).unwrap();
        let u1 = s.apply(&t1);
        let u2 = s.apply(&t2);
        assert_eq!(u1, u2);
        match u1 {
            Ty::Record(row) => {
                let names: Vec<_> = row.fields.iter().map(|f| f.name.as_str()).collect();
                assert_eq!(names, vec!["x", "y"]);
                assert!(matches!(row.tail, RowTail::Var(..)));
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn common_fields_unify_their_types() {
        let mut vars = VarAlloc::new();
        let (r1, r2, a) = (vars.fresh(), vars.fresh(), vars.fresh());
        let t1 = rec(vec![field("x", Ty::svar(a))], RowTail::Var(r1, NO_FLAG));
        let t2 = rec(vec![field("x", Ty::Int)], RowTail::Var(r2, NO_FLAG));
        let s = unify(&t1, &t2, &mut vars).unwrap();
        assert_eq!(s.apply(&Ty::svar(a)), Ty::Int);
    }

    #[test]
    fn closed_row_rejects_missing_field() {
        let mut vars = VarAlloc::new();
        let r = vars.fresh();
        let open = rec(vec![field("x", Ty::Int)], RowTail::Var(r, NO_FLAG));
        let closed = rec(vec![], RowTail::Closed);
        assert!(matches!(
            unify(&open, &closed, &mut vars),
            Err(UnifyError::MissingField { .. })
        ));
    }

    #[test]
    fn closed_row_absorbs_into_open_tail() {
        let mut vars = VarAlloc::new();
        let r = vars.fresh();
        let open = rec(vec![field("x", Ty::Int)], RowTail::Var(r, NO_FLAG));
        let closed = rec(
            vec![field("x", Ty::Int), field("y", Ty::Str)],
            RowTail::Closed,
        );
        let s = unify(&open, &closed, &mut vars).unwrap();
        assert_eq!(s.apply(&open), s.apply(&closed));
        match s.apply(&open) {
            Ty::Record(row) => assert_eq!(row.tail, RowTail::Closed),
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn same_row_var_with_extra_fields_fails() {
        let mut vars = VarAlloc::new();
        let r = vars.fresh();
        let t1 = rec(vec![field("x", Ty::Int)], RowTail::Var(r, NO_FLAG));
        let t2 = rec(vec![], RowTail::Var(r, NO_FLAG));
        assert!(unify(&t1, &t2, &mut vars).is_err());
    }

    #[test]
    fn row_occurs_check_fires() {
        // The Section 6 anecdote: storing a monadic action typed over the
        // same row variable inside the record itself trips the occurs
        // check. {m : {r} → Int, r} ~ itself-shaped constraints.
        let mut vars = VarAlloc::new();
        let r = vars.fresh();
        let inner = rec(vec![], RowTail::Var(r, NO_FLAG));
        let t1 = rec(
            vec![field("m", Ty::fun(inner, Ty::Int))],
            RowTail::Var(r, NO_FLAG),
        );
        let t2 = rec(vec![], RowTail::Var(r, NO_FLAG));
        assert!(unify(&t1, &t2, &mut vars).is_err());
    }

    #[test]
    fn transitive_binding_through_shared_variable() {
        let mut vars = VarAlloc::new();
        let (a, b) = (vars.fresh(), vars.fresh());
        // Unify (a, a) with (Int, b): a ↦ Int, then b ↦ Int.
        let s = mgu(
            vec![(Ty::svar(a), Ty::Int), (Ty::svar(a), Ty::svar(b))],
            &mut vars,
        )
        .unwrap();
        assert_eq!(s.apply(&Ty::svar(b)), Ty::Int);
    }
}
