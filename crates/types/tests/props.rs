//! Property tests for unification and substitutions over random skeleton
//! types (including rows).

use proptest::prelude::*;
use rowpoly_lang::Symbol;
use rowpoly_types::{mgu, mgu_uf, unify, FieldEntry, RowTail, Subst, Ty, Var, VarAlloc, NO_FLAG};

const FIELD_POOL: [&str; 4] = ["a", "b", "c", "d"];

/// Random skeleton types over variables `t0..t5`.
fn ty() -> impl Strategy<Value = Ty> {
    let leaf = prop_oneof![
        (0u32..6).prop_map(|v| Ty::svar(Var(v))),
        Just(Ty::Int),
        Just(Ty::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ty::fun(a, b)),
            inner.clone().prop_map(Ty::list),
            (
                prop::collection::btree_map(0usize..FIELD_POOL.len(), inner, 0..3),
                prop::option::of(6u32..9),
            )
                .prop_map(|(fields, tail)| {
                    let fields = fields
                        .into_iter()
                        .map(|(i, t)| FieldEntry {
                            name: Symbol::intern(FIELD_POOL[i]),
                            flag: NO_FLAG,
                            ty: t,
                        })
                        .collect();
                    let tail = match tail {
                        // Row variables drawn from a disjoint pool so a
                        // variable never plays both sorts.
                        Some(v) => RowTail::Var(Var(v), NO_FLAG),
                        None => RowTail::Closed,
                    };
                    Ty::record(fields, tail)
                }),
        ]
    })
}

fn fresh_alloc() -> VarAlloc {
    let mut a = VarAlloc::new();
    for _ in 0..16 {
        a.fresh(); // reserve the ids used by the generator
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// A unifier actually unifies: σ(t1) == σ(t2) (on skeletons).
    #[test]
    fn unifier_unifies(t1 in ty(), t2 in ty()) {
        let mut vars = fresh_alloc();
        if let Ok(s) = unify(&t1, &t2, &mut vars) {
            prop_assert_eq!(
                s.apply(&t1).strip(),
                s.apply(&t2).strip(),
                "σ = {:?}",
                s
            );
        }
    }

    /// Unification is symmetric in success.
    #[test]
    fn unification_is_symmetric(t1 in ty(), t2 in ty()) {
        let mut v1 = fresh_alloc();
        let mut v2 = fresh_alloc();
        prop_assert_eq!(
            unify(&t1, &t2, &mut v1).is_ok(),
            unify(&t2, &t1, &mut v2).is_ok()
        );
    }

    /// Every type unifies with itself, with an effectively-identity
    /// unifier.
    #[test]
    fn unification_is_reflexive(t in ty()) {
        let mut vars = fresh_alloc();
        let s = unify(&t, &t, &mut vars).expect("t ~ t");
        prop_assert_eq!(s.apply(&t).strip(), t.strip());
    }

    /// Unifiers are idempotent: applying twice equals applying once.
    /// (The probe must be built from the unified terms — a substitution is
    /// only meaningful for types whose row constraints took part in the
    /// unification.)
    #[test]
    fn unifiers_are_idempotent(t1 in ty(), t2 in ty()) {
        let mut vars = fresh_alloc();
        if let Ok(s) = unify(&t1, &t2, &mut vars) {
            let probe = Ty::fun(t1.clone(), Ty::list(t2.clone()));
            let once = s.apply(&probe);
            prop_assert_eq!(s.apply(&once), once);
        }
    }

    /// A unifier binds no variable to a term containing it (occurs-check
    /// invariant).
    #[test]
    fn no_cyclic_bindings(t1 in ty(), t2 in ty()) {
        let mut vars = fresh_alloc();
        if let Ok(s) = unify(&t1, &t2, &mut vars) {
            for (v, bound) in s.ty_bindings() {
                prop_assert!(!bound.mentions_var(v), "{v:?} ↦ {bound:?}");
            }
            for (v, row) in s.row_bindings() {
                prop_assert!(
                    !Ty::Record(row.clone()).mentions_var(v),
                    "{v:?} ↦ {row:?}"
                );
            }
        }
    }

    /// Unification with a fresh variable always succeeds and binds it to
    /// (an instance of) the type.
    #[test]
    fn fresh_variable_unifies_with_anything(t in ty()) {
        let mut vars = fresh_alloc();
        // Fresh type variables start beyond both generator pools.
        for _ in 0..8 { vars.fresh(); }
        let v = vars.fresh();
        let s = unify(&Ty::svar(v), &t, &mut vars).expect("fresh var unifies");
        prop_assert_eq!(s.apply(&Ty::svar(v)).strip(), s.apply(&t).strip());
    }

    /// `strip` is idempotent and `decorate ∘ strip` preserves skeletons.
    #[test]
    fn strip_decorate_roundtrip(t in ty()) {
        let stripped = t.strip();
        prop_assert_eq!(stripped.strip(), stripped.clone());
        let mut flags = rowpoly_boolfun::FlagAlloc::new();
        let decorated = stripped.decorate(&mut flags);
        prop_assert_eq!(decorated.strip(), stripped);
        // One fresh flag per flag position.
        prop_assert_eq!(decorated.flags().len(), flags.count());
    }

    /// The empty substitution is the identity.
    #[test]
    fn empty_subst_is_identity(t in ty()) {
        prop_assert_eq!(Subst::new().apply(&t), t);
    }

    /// The substitution-composition and lazy-binding unifier backends
    /// agree: same verdict, and each backend's unifier unifies the inputs.
    #[test]
    fn unifier_backends_agree(t1 in ty(), t2 in ty()) {
        let mut v1 = fresh_alloc();
        let mut v2 = fresh_alloc();
        let r_subst = mgu([(t1.clone(), t2.clone())], &mut v1);
        let r_uf = mgu_uf([(t1.clone(), t2.clone())], &mut v2);
        prop_assert_eq!(
            r_subst.is_ok(),
            r_uf.is_ok(),
            "verdicts differ on {:?} ~ {:?}: {:?} vs {:?}",
            t1, t2, r_subst, r_uf
        );
        if let (Ok(s), Ok(u)) = (r_subst, r_uf) {
            prop_assert_eq!(s.apply(&t1).strip(), s.apply(&t2).strip());
            prop_assert_eq!(u.apply(&t1).strip(), u.apply(&t2).strip());
        }
    }

    /// Unifiers from the lazy backend are idempotent too.
    #[test]
    fn uf_unifiers_are_idempotent(t1 in ty(), t2 in ty()) {
        let mut vars = fresh_alloc();
        if let Ok(s) = mgu_uf([(t1.clone(), t2.clone())], &mut vars) {
            let probe = Ty::fun(t1.clone(), Ty::list(t2.clone()));
            let once = s.apply(&probe);
            prop_assert_eq!(s.apply(&once), once);
        }
    }
}
