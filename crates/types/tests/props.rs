//! Property tests for unification and substitutions over random skeleton
//! types (including rows).
//!
//! Sampling uses the in-tree seeded PRNG (`rowpoly_obs::rng`) instead
//! of `proptest`; case counts scale with the `exhaustive` feature.

use rowpoly_lang::Symbol;
use rowpoly_obs::cases;
use rowpoly_obs::rng::SplitMix64;
use rowpoly_types::{mgu, mgu_uf, unify, FieldEntry, RowTail, Subst, Ty, Var, VarAlloc, NO_FLAG};

const FIELD_POOL: [&str; 4] = ["a", "b", "c", "d"];

/// Random skeleton types over variables `t0..t5`, with row variables
/// drawn from the disjoint pool `t6..t8` so a variable never plays both
/// sorts.
fn ty(rng: &mut SplitMix64, depth: usize) -> Ty {
    if depth == 0 || rng.gen_bool(0.4) {
        return match rng.gen_range(0..4u8) {
            0 | 1 => Ty::svar(Var(rng.gen_range(0..6u32))),
            2 => Ty::Int,
            _ => Ty::Str,
        };
    }
    match rng.gen_range(0..3u8) {
        0 => Ty::fun(ty(rng, depth - 1), ty(rng, depth - 1)),
        1 => Ty::list(ty(rng, depth - 1)),
        _ => {
            let mut idx: Vec<usize> = (0..FIELD_POOL.len()).collect();
            rng.shuffle(&mut idx);
            let mut idx: Vec<usize> = idx.into_iter().take(rng.gen_range(0..3usize)).collect();
            idx.sort_unstable();
            let fields = idx
                .into_iter()
                .map(|i| FieldEntry {
                    name: Symbol::intern(FIELD_POOL[i]),
                    flag: NO_FLAG,
                    ty: ty(rng, depth - 1),
                })
                .collect();
            let tail = if rng.gen_bool(0.5) {
                RowTail::Var(Var(rng.gen_range(6..9u32)), NO_FLAG)
            } else {
                RowTail::Closed
            };
            Ty::record(fields, tail)
        }
    }
}

fn pair(rng: &mut SplitMix64) -> (Ty, Ty) {
    (ty(rng, 3), ty(rng, 3))
}

fn fresh_alloc() -> VarAlloc {
    let mut a = VarAlloc::new();
    for _ in 0..16 {
        a.fresh(); // reserve the ids used by the generator
    }
    a
}

/// A unifier actually unifies: σ(t1) == σ(t2) (on skeletons).
#[test]
fn unifier_unifies() {
    let mut rng = SplitMix64::seed_from_u64(0x7101);
    for _ in 0..cases(512) {
        let (t1, t2) = pair(&mut rng);
        let mut vars = fresh_alloc();
        if let Ok(s) = unify(&t1, &t2, &mut vars) {
            assert_eq!(s.apply(&t1).strip(), s.apply(&t2).strip(), "σ = {s:?}");
        }
    }
}

/// Unification is symmetric in success.
#[test]
fn unification_is_symmetric() {
    let mut rng = SplitMix64::seed_from_u64(0x7102);
    for _ in 0..cases(512) {
        let (t1, t2) = pair(&mut rng);
        let mut v1 = fresh_alloc();
        let mut v2 = fresh_alloc();
        assert_eq!(
            unify(&t1, &t2, &mut v1).is_ok(),
            unify(&t2, &t1, &mut v2).is_ok(),
            "{t1:?} ~ {t2:?}"
        );
    }
}

/// Every type unifies with itself, with an effectively-identity unifier.
#[test]
fn unification_is_reflexive() {
    let mut rng = SplitMix64::seed_from_u64(0x7103);
    for _ in 0..cases(512) {
        let t = ty(&mut rng, 3);
        let mut vars = fresh_alloc();
        let s = unify(&t, &t, &mut vars).expect("t ~ t");
        assert_eq!(s.apply(&t).strip(), t.strip());
    }
}

/// Unifiers are idempotent: applying twice equals applying once.
/// (The probe must be built from the unified terms — a substitution is
/// only meaningful for types whose row constraints took part in the
/// unification.)
#[test]
fn unifiers_are_idempotent() {
    let mut rng = SplitMix64::seed_from_u64(0x7104);
    for _ in 0..cases(512) {
        let (t1, t2) = pair(&mut rng);
        let mut vars = fresh_alloc();
        if let Ok(s) = unify(&t1, &t2, &mut vars) {
            let probe = Ty::fun(t1.clone(), Ty::list(t2.clone()));
            let once = s.apply(&probe);
            assert_eq!(s.apply(&once), once);
        }
    }
}

/// A unifier binds no variable to a term containing it (occurs-check
/// invariant).
#[test]
fn no_cyclic_bindings() {
    let mut rng = SplitMix64::seed_from_u64(0x7105);
    for _ in 0..cases(512) {
        let (t1, t2) = pair(&mut rng);
        let mut vars = fresh_alloc();
        if let Ok(s) = unify(&t1, &t2, &mut vars) {
            for (v, bound) in s.ty_bindings() {
                assert!(!bound.mentions_var(v), "{v:?} ↦ {bound:?}");
            }
            for (v, row) in s.row_bindings() {
                assert!(!Ty::Record(row.clone()).mentions_var(v), "{v:?} ↦ {row:?}");
            }
        }
    }
}

/// Unification with a fresh variable always succeeds and binds it to
/// (an instance of) the type.
#[test]
fn fresh_variable_unifies_with_anything() {
    let mut rng = SplitMix64::seed_from_u64(0x7106);
    for _ in 0..cases(512) {
        let t = ty(&mut rng, 3);
        let mut vars = fresh_alloc();
        // Fresh type variables start beyond both generator pools.
        for _ in 0..8 {
            vars.fresh();
        }
        let v = vars.fresh();
        let s = unify(&Ty::svar(v), &t, &mut vars).expect("fresh var unifies");
        assert_eq!(s.apply(&Ty::svar(v)).strip(), s.apply(&t).strip());
    }
}

/// `strip` is idempotent and `decorate ∘ strip` preserves skeletons.
#[test]
fn strip_decorate_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0x7107);
    for _ in 0..cases(512) {
        let t = ty(&mut rng, 3);
        let stripped = t.strip();
        assert_eq!(stripped.strip(), stripped.clone());
        let mut flags = rowpoly_boolfun::FlagAlloc::new();
        let decorated = stripped.decorate(&mut flags);
        assert_eq!(decorated.strip(), stripped);
        // One fresh flag per flag position.
        assert_eq!(decorated.flags().len(), flags.count());
    }
}

/// The empty substitution is the identity.
#[test]
fn empty_subst_is_identity() {
    let mut rng = SplitMix64::seed_from_u64(0x7108);
    for _ in 0..cases(512) {
        let t = ty(&mut rng, 3);
        assert_eq!(Subst::new().apply(&t), t);
    }
}

/// The substitution-composition and lazy-binding unifier backends
/// agree: same verdict, and each backend's unifier unifies the inputs.
#[test]
fn unifier_backends_agree() {
    let mut rng = SplitMix64::seed_from_u64(0x7109);
    for _ in 0..cases(512) {
        let (t1, t2) = pair(&mut rng);
        let mut v1 = fresh_alloc();
        let mut v2 = fresh_alloc();
        let r_subst = mgu([(t1.clone(), t2.clone())], &mut v1);
        let r_uf = mgu_uf([(t1.clone(), t2.clone())], &mut v2);
        assert_eq!(
            r_subst.is_ok(),
            r_uf.is_ok(),
            "verdicts differ on {t1:?} ~ {t2:?}: {r_subst:?} vs {r_uf:?}"
        );
        if let (Ok(s), Ok(u)) = (r_subst, r_uf) {
            assert_eq!(s.apply(&t1).strip(), s.apply(&t2).strip());
            assert_eq!(u.apply(&t1).strip(), u.apply(&t2).strip());
        }
    }
}

/// Unifiers from the lazy backend are idempotent too.
#[test]
fn uf_unifiers_are_idempotent() {
    let mut rng = SplitMix64::seed_from_u64(0x710A);
    for _ in 0..cases(512) {
        let (t1, t2) = pair(&mut rng);
        let mut vars = fresh_alloc();
        if let Ok(s) = mgu_uf([(t1.clone(), t2.clone())], &mut vars) {
            let probe = Ty::fun(t1.clone(), Ty::list(t2.clone()));
            let once = s.apply(&probe);
            assert_eq!(s.apply(&once), once);
        }
    }
}
