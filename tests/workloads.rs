//! The workload generators produce programs that type-check, evaluate,
//! and land in the satisfiability class their operations predict.

use rowpoly::boolfun::SatClass;
use rowpoly::core::{CheckPolicy, Options, Session};
use rowpoly::eval::{eval_program, Value};
use rowpoly::gen::{generate_guarded, generate_with_lines, GuardedParams};

#[test]
fn guarded_workloads_check_and_run() {
    for with_concat in [false, true] {
        let program = generate_guarded(&GuardedParams {
            modules: 3,
            fields_per_module: 3,
            with_concat,
            ..GuardedParams::default()
        });
        let report = Session::default()
            .infer_program(&program)
            .expect("guarded workloads are well-typed");
        assert_eq!(report.sat_class, SatClass::General, "when ⇒ general CNF");
        match eval_program(&program, 5_000_000) {
            Ok(Value::Int(_)) => {}
            other => panic!("expected an Int, got {other:?}"),
        }
    }
}

#[test]
fn decoder_workloads_stay_two_sat() {
    let (program, _) = generate_with_lines(400, true, 3);
    let report = Session::default().infer_program(&program).expect("checks");
    assert!(
        report.sat_class <= SatClass::TwoSat,
        "got {:?}",
        report.sat_class
    );
}

#[test]
fn eager_checking_reports_the_access_site() {
    // With eager checking, the error is raised at the offending select's
    // application, not at the end of the definition.
    let src = "def b = #foo {}";
    let opts = Options {
        check: CheckPolicy::Eager,
        ..Options::default()
    };
    let err = Session::new(opts).infer_source(src).expect_err("rejected");
    let rendered = err.render(src);
    assert!(rendered.contains("foo"), "{rendered}");
}

#[test]
fn final_checking_still_rejects() {
    let src = "def a = #foo {}\ndef b = 1";
    let opts = Options {
        check: CheckPolicy::Final,
        ..Options::default()
    };
    assert!(Session::new(opts).infer_source(src).is_err());
}

#[test]
fn letrec_iteration_bound_reports_divergence() {
    // A recursion whose type grows every iteration (f x = f 1 x builds
    // Int -> Int -> …) must stop at the bound, not loop forever.
    let opts = Options {
        max_letrec_iters: 4,
        ..Options::default()
    };
    let src = "def f x = f";
    // f = \x . f : the fixpoint alternates shapes; whatever the outcome,
    // inference must terminate. (Occurs check or divergence are both
    // acceptable rejections.)
    let _ = Session::new(opts.clone()).infer_source(src);
    let src2 = "def f x = f 1 x";
    let started = std::time::Instant::now();
    let _ = Session::new(opts).infer_source(src2);
    assert!(started.elapsed().as_secs() < 5, "fixpoint terminated");
}

#[test]
fn deep_pipelines_check_on_a_big_stack() {
    // Inference recursion is proportional to AST depth; deep expression
    // chains need a generous native stack (as in production compilers).
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let mut src = String::from("def main = #f0 (");
            for i in (0..120).rev() {
                src.push_str(&format!("@{{f{i} = {i}}} ("));
            }
            src.push_str("{}");
            src.push_str(&")".repeat(121));
            let report = Session::default()
                .infer_source(&src)
                .expect("long chain checks");
            assert_eq!(report.defs[0].render(false), "Int");
        })
        .expect("spawn")
        .join()
        .expect("deep pipeline thread");
}
