//! End-to-end tests of `rowpoly check` — the batch CLI surface.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn rowpoly(args: &[&str], cwd: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rowpoly"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A scratch directory with its own programs and cache.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("rowpoly-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch { dir }
    }

    fn write(&self, name: &str, source: &str) {
        std::fs::write(self.dir.join(name), source).unwrap();
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn checks_a_directory_and_reports_success() {
    let s = Scratch::new("ok");
    s.write("a.rp", "def inc x = x + 1\n");
    s.write("b.rp", "def two = 2\n");
    let out = rowpoly(&["check", ".", "--jobs", "2"], &s.dir);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("a.rp: inc : Int -> Int"), "got: {text}");
    assert!(text.contains("b.rp: two : Int"), "got: {text}");
    assert!(text.contains("2 files, 2 definitions: 2 ok"), "got: {text}");
}

#[test]
fn any_failing_definition_makes_the_exit_nonzero() {
    let s = Scratch::new("fail");
    s.write("good.rp", "def v = 1\n");
    s.write("bad.rp", "def broken = #missing {}\n");
    let out = rowpoly(&["check", "good.rp", "bad.rp"], &s.dir);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    // Diagnostics render against the failing file's own path.
    assert!(text.contains("bad.rp: broken: error"), "got: {text}");
    assert!(text.contains("#missing {}"), "got: {text}");
    assert!(text.contains("good.rp: v : Int"), "got: {text}");
}

#[test]
fn missing_paths_and_bad_flags_exit_with_usage_errors() {
    let s = Scratch::new("usage");
    assert_eq!(rowpoly(&["check"], &s.dir).status.code(), Some(2));
    assert_eq!(
        rowpoly(&["check", "no-such-file.rp"], &s.dir).status.code(),
        Some(2)
    );
    s.write("a.rp", "def v = 1\n");
    assert_eq!(
        rowpoly(&["check", "a.rp", "--jobs", "many"], &s.dir)
            .status
            .code(),
        Some(2)
    );
    assert_eq!(
        rowpoly(&["check", "a.rp", "--compaction", "sometimes"], &s.dir)
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn second_run_hits_the_cache_and_output_is_stable() {
    let s = Scratch::new("cache");
    s.write("a.rp", "def tag r = @{t = 1} r\ndef use = #t (tag {})\n");
    let cold = rowpoly(&["check", ".", "--jobs", "2"], &s.dir);
    assert!(cold.status.success());

    let warm = rowpoly(&["check", ".", "--jobs", "2"], &s.dir);
    assert_eq!(stdout(&warm), stdout(&cold));
    assert!(
        s.dir.join(".rowpoly-cache").join("cache.json").is_file(),
        "cache file was not written"
    );

    let json = stdout(&rowpoly(&["check", ".", "--jobs", "2", "--json"], &s.dir));
    let hits = json
        .split("\"cache_hits\":")
        .nth(1)
        .and_then(|t| t.split([',', '}']).next())
        .and_then(|n| n.trim().parse::<u64>().ok())
        .expect("cache_hits in JSON report");
    assert!(hits > 0, "warm run reported no cache hits: {json}");
}

#[test]
fn jobs_setting_does_not_change_the_output() {
    let s = Scratch::new("det");
    for i in 0..6 {
        s.write(
            &format!("f{i}.rp"),
            &format!("def a{i} = {i}\ndef b{i} r = @{{x = a{i}}} r\n"),
        );
    }
    let one = rowpoly(&["check", ".", "--jobs", "1", "--no-cache"], &s.dir);
    let eight = rowpoly(&["check", ".", "--jobs", "8", "--no-cache"], &s.dir);
    assert!(one.status.success());
    assert_eq!(stdout(&one), stdout(&eight));
}

#[test]
fn tiny_sat_budget_times_out_one_def_and_finishes_the_rest() {
    let s = Scratch::new("budget");
    s.write("p.rp", "def hard = {a = 1} @@ {b = 2}\ndef easy = 1\n");
    let out = rowpoly(
        &[
            "check",
            "p.rp",
            "--no-cache",
            "--compaction",
            "perdef",
            "--sat-budget",
            "0",
        ],
        &s.dir,
    );
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("hard: timeout"), "got: {text}");
    assert!(text.contains("easy : Int"), "got: {text}");
    assert!(text.contains("1 timeouts"), "got: {text}");
}
