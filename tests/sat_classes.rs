//! Section 5's classification of record operations into satisfiability
//! classes, verified on the formulas whole programs actually generate,
//! plus cross-solver agreement on those formulas.

use rowpoly::boolfun::sat::{solve_with, Engine};
use rowpoly::boolfun::{classify, Cnf, Flag, Lit, SatClass};
use rowpoly::core::Session;

fn class_of(src: &str) -> SatClass {
    Session::default()
        .infer_source(src)
        .unwrap_or_else(|e| panic!("{src} should check: {e}"))
        .sat_class
}

#[test]
fn select_update_programs_stay_two_sat() {
    // A whole pipeline of empty records, updates, selects, removals and
    // renamings never leaves the 2-SAT class.
    let src = r"
def mk = {a = 1, b = 2, c = 3}
def moved = ^{c -> d} (%b mk)
def use s = if #a s < 2 then #d (@{d = 9} s) else #a s
def go = use moved
";
    assert!(class_of(src) <= SatClass::TwoSat, "got {:?}", class_of(src));
}

#[test]
fn asymmetric_concat_stays_linear_time() {
    let src = r"
def join x y = x @ y
def use = #a (join {a = 1} {b = 2}) + #b (join {a = 1} {b = 2})
";
    let c = class_of(src);
    assert!(
        c <= SatClass::DualHorn,
        "asymmetric concatenation must stay within a linear-time class, got {c:?}"
    );
}

#[test]
fn symmetric_concat_and_when_are_general() {
    assert_eq!(class_of("def use = {a = 1} @@ {b = 2}"), SatClass::General);
    // `when` exceeds the Horn fragment once its branches carry flags of
    // their own (record-typed results mix clause polarities).
    let when_int = class_of("def use s = when a in s then #a s else 0\ndef go = use {}");
    assert!(
        when_int > SatClass::TwoSat,
        "guarded clauses leave 2-SAT: {when_int:?}"
    );
    assert_eq!(
        class_of("def pick s = when a in s then s else @{a = 9} s\ndef go = #a (pick {})"),
        SatClass::General
    );
}

/// The three solvers agree on the formula families the inference
/// generates (implication chains with equivalences; Horn rule sets;
/// disjunction + mutual exclusion).
#[test]
fn solvers_agree_on_inference_formula_families() {
    let mut cases: Vec<Cnf> = Vec::new();

    // Select/update family: equivalence chains with one asserted flag and
    // one denied flag at varying distances.
    for n in [2u32, 5, 17] {
        let mut b = Cnf::top();
        for i in 0..n {
            b.iff(Lit::pos(Flag(i)), Lit::pos(Flag(i + 1)));
        }
        b.assert_lit(Lit::pos(Flag(0)));
        cases.push(b.clone());
        b.assert_lit(Lit::neg(Flag(n)));
        cases.push(b);
    }
    // Concatenation family: fr ↔ f1 ∨ f2 columns with some assertions.
    for k in [1u32, 4] {
        let mut b = Cnf::top();
        for i in 0..k {
            let (f1, f2, fr) = (Flag(3 * i), Flag(3 * i + 1), Flag(3 * i + 2));
            b.add_lits(vec![Lit::neg(fr), Lit::pos(f1), Lit::pos(f2)]);
            b.imply(Lit::pos(f1), Lit::pos(fr));
            b.imply(Lit::pos(f2), Lit::pos(fr));
            b.assert_lit(Lit::pos(fr));
            b.assert_lit(Lit::neg(f1));
        }
        cases.push(b.clone());
        // Symmetric: additionally exclude both.
        for i in 0..k {
            b.add_lits(vec![Lit::neg(Flag(3 * i)), Lit::neg(Flag(3 * i + 1))]);
        }
        cases.push(b);
    }

    for (i, cnf) in cases.iter().enumerate() {
        let auto = solve_with(Engine::Auto, cnf).is_sat();
        let cdcl = solve_with(Engine::Cdcl, cnf).is_sat();
        assert_eq!(auto, cdcl, "case {i} disagrees: {cnf:?}");
        match classify(cnf) {
            SatClass::TwoSat => {
                assert_eq!(solve_with(Engine::TwoSat, cnf).is_sat(), cdcl, "case {i}");
            }
            SatClass::Horn => {
                assert_eq!(solve_with(Engine::Horn, cnf).is_sat(), cdcl, "case {i}");
            }
            _ => {}
        }
    }
}

/// The 2-SAT conflict chain drives the error explanation: it traverses
/// from the selector's requirement back to the empty record.
#[test]
fn conflict_chain_connects_requirement_to_origin() {
    let mut b = Cnf::top();
    // ¬f0 (empty record), chain f0 ↔ f1 ↔ f2, select asserts f2.
    b.assert_lit(Lit::neg(Flag(0)));
    b.iff(Lit::pos(Flag(0)), Lit::pos(Flag(1)));
    b.iff(Lit::pos(Flag(1)), Lit::pos(Flag(2)));
    b.assert_lit(Lit::pos(Flag(2)));
    match b.solve() {
        rowpoly::boolfun::SatResult::Unsat(chain) => {
            let flags: Vec<Flag> = chain.iter().map(|l| l.flag()).collect();
            assert!(
                flags.contains(&Flag(0)),
                "chain reaches the origin: {chain:?}"
            );
            assert!(
                flags.contains(&Flag(2)),
                "chain includes the demand: {chain:?}"
            );
        }
        other => panic!("expected unsat, got {other:?}"),
    }
}
