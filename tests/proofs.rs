//! Proof-logged verdicts, end to end: `rowpoly explain` renders minimal
//! span-anchored error paths, unsat cores shrink under minimization, and
//! every verdict the inference produces on the fuzz corpus survives
//! `ProofChecker` replay (`ROWPOLY_CHECK_PROOFS=1` turns the whole
//! engine into its own referee — a bogus proof panics inside the solver).

use rowpoly::boolfun::{minimize_core, solve_proved, Clause, Cnf, Lit, ProofChecker};
use rowpoly::core::{CheckPolicy, Options, Session};
use rowpoly::gen::{random_pipeline, FuzzParams};

/// Every test in this binary turns on inline proof checking before its
/// first solver call, so the process-wide latch reads the flag no matter
/// which test the harness schedules first.
fn check_proofs_on() {
    std::env::set_var("ROWPOLY_CHECK_PROOFS", "1");
}

fn eager_session() -> Session {
    Session::new(Options {
        check: CheckPolicy::Eager,
        ..Options::default()
    })
}

/// Renders the first error of `src` the way `rowpoly explain` does.
fn explain(src: &str) -> String {
    let err = eager_session()
        .infer_source(src)
        .expect_err("program has a type error");
    err.render_explained(src)
}

/// Golden rendering of a multi-step missing-field path: an empty record
/// gains `b`, then `a`, loses `a` again, and is then selected on `a`.
/// The minimal core pins the two steps the conflict actually rests on —
/// the removal and the selection — in source order.
#[test]
fn explain_renders_multistep_missing_field_path() {
    check_proofs_on();
    let src = "def path =\n  let r = @{b = 2} ({}) in\n  let s = %a (@{a = 1} r) in\n  #a s\n";
    let expected = "\
error: field `a` may not exist at this access
 --> 4:3
  |   #a s
  |   ^^^^
note: field `a` removed here
 --> 3:11
  |   let s = %a (@{a = 1} r) in
  |           ^^
note: field `a` selected here
 --> 4:3
  |   #a s
  |   ^^
note: minimal unsat core: 3 of 24 \u{3b2} clauses (2sat), 2 derivation steps
 --> 4:3
  |   #a s
  |   ^^^^
";
    assert_eq!(explain(src), expected);
}

/// The four record-op error forms each render a span-anchored minimal
/// path naming the responsible operation, plus the checked-core summary.
#[test]
fn explain_covers_all_record_op_error_forms() {
    check_proofs_on();
    let cases: &[(&str, &[&str])] = &[
        (
            "def use = #foo {}",
            &[
                "field `foo` selected here",
                "empty record `{}` created here",
            ],
        ),
        (
            "def gone = #a (%a (@{a = 1} ({})))",
            &["field `a` removed here", "field `a` selected here"],
        ),
        (
            "def clash = ^{a -> b} (@{b = 2} ({}))",
            &[
                "rename target `b` must be absent here",
                "field `b` added here",
            ],
        ),
        (
            "def overlap = (@{a = 1} ({})) @@ (@{a = 2} ({}))",
            &["symmetric concatenation `@@` here", "field `a` added here"],
        ),
    ];
    for (src, notes) in cases {
        let rendered = explain(src);
        for note in *notes {
            assert!(
                rendered.contains(note),
                "missing note {note:?} in:\n{rendered}"
            );
        }
        assert!(
            rendered.contains("minimal unsat core:"),
            "missing core summary in:\n{rendered}"
        );
        // Every note is span-anchored: a location line plus a caret line.
        let locs = rendered.matches("-->").count();
        let notes_shown = rendered.matches("note:").count();
        assert_eq!(
            locs,
            notes_shown + 1, // the error itself is anchored too
            "every note carries a source location:\n{rendered}"
        );
    }
}

/// Deletion-based minimization strictly shrinks a core that the solver
/// padded with clauses irrelevant to the contradiction.
#[test]
fn minimized_core_is_strictly_smaller_than_beta() {
    check_proofs_on();
    let f = |i: u32| rowpoly::boolfun::Flag(i);
    let clause = |lits: Vec<Lit>| Clause::new(lits).expect("not a tautology");
    // An unsat kernel {f0, f0→f1, ¬f1} buried among satisfiable chaff.
    let cnf = Cnf::from_clauses(vec![
        clause(vec![Lit::pos(f(2)), Lit::pos(f(3))]),
        clause(vec![Lit::pos(f(0))]),
        clause(vec![Lit::neg(f(2)), Lit::pos(f(4))]),
        clause(vec![Lit::neg(f(0)), Lit::pos(f(1))]),
        clause(vec![Lit::pos(f(5)), Lit::neg(f(3))]),
        clause(vec![Lit::neg(f(1))]),
    ]);
    let (res, proof) = solve_proved(&cnf);
    assert!(!res.is_sat());
    let unsat = proof.unsat().expect("unsat proof");
    ProofChecker::check(&cnf, &proof).expect("proof replays");
    let minimized = minimize_core(&cnf, &unsat.core);
    assert!(
        minimized.len() < cnf.clauses().len(),
        "core {minimized:?} not smaller than \u{3b2} ({} clauses)",
        cnf.clauses().len()
    );
    assert_eq!(minimized, vec![1, 3, 5], "exactly the kernel survives");
    // The minimized subset is itself unsat — the evidence stands alone.
    let sub = Cnf::from_clauses(minimized.iter().map(|&i| cnf.clauses()[i].clone()));
    assert!(!sub.is_sat());
}

/// Every verdict on the fuzz corpus passes checked replay: with
/// `ROWPOLY_CHECK_PROOFS=1` the solver re-derives each SAT/UNSAT answer
/// with a proof and panics if the checker rejects it, so simply running
/// the corpus is the assertion. Rejections must also carry a usable
/// minimal core.
#[test]
fn proof_checker_accepts_every_fuzz_verdict() {
    check_proofs_on();
    let mut rejected = 0;
    for seed in 0..150 {
        let expr = random_pipeline(seed, FuzzParams::default());
        if let Err(e) = eager_session().infer_expr(&expr) {
            rejected += 1;
            let info = e.proof.as_ref().expect("rejection carries proof info");
            assert!(!info.minimized_core_clauses.is_empty());
            assert!(info.minimized_core_clauses.len() <= info.core_clauses.len());
            assert!(info.core_clauses.len() <= info.beta_clauses);
        }
    }
    assert!(rejected > 10, "only {rejected} rejections in 150 seeds");
}
