//! The worked examples of the paper, end to end.

use rowpoly::core::{hm, remy::RemyInfer, Options, Session};

fn flow() -> Session {
    Session::default()
}

/// The introduction's motivating program: a producer adds `foo` inside the
/// then-branch of a conditional before a consumer reads it; the else
/// branch returns the state unchanged.
const MOTIVATING: &str = r"
def f s = if some_condition then
            let s2 = @{foo = 42} s;
                v  = #foo s2
            in s2
          else s
";

#[test]
fn intro_f_is_typed() {
    let report = flow().infer_source(MOTIVATING).expect("f checks");
    // f : {FOO.fN : Int, a.fa} → {FOO.f'N : Int, a.f'a} — the same row
    // variable on both sides (only the flags differ), as in the paper.
    assert_eq!(
        report.defs[0].render(false),
        "forall a . {foo : Int, a} -> {foo : Int, a}"
    );
    // The paper's flow for f is f'N → fN ∧ f'a → fa: output implies input.
    // Our stored flow must contain implications from output flags to input
    // flags (flag numbering: f1/f2 input field/tail, f3/f4 output).
    let with_flow = report.defs[0].render_with_flow();
    assert!(with_flow.contains('|'), "flow is rendered: {with_flow}");
    assert!(
        with_flow.contains("f3 -> f1") || with_flow.contains("f4 -> f2"),
        "output-to-input implications present: {with_flow}"
    );
}

#[test]
fn intro_call_with_empty_record_is_accepted_by_flow_inference() {
    let src = format!("{MOTIVATING}\ndef use = f {{}}");
    let report = flow()
        .infer_source(&src)
        .expect("f {} is safe: no path reads foo");
    assert!(
        report.defs[1].render(false).contains('{'),
        "result is a record"
    );
}

#[test]
fn intro_select_after_call_is_rejected() {
    // #foo (f {}) — the else-path returns {} to the outer selector.
    let src = format!("{MOTIVATING}\ndef use = #foo (f {{}})");
    let err = flow()
        .infer_source(&src)
        .expect_err("the else-path has no foo");
    let rendered = err.render(&src);
    assert!(
        rendered.contains("foo"),
        "error mentions the field: {rendered}"
    );
}

#[test]
fn intro_remy_baseline_already_rejects_the_call() {
    // Rémy's Pre/Abs unification propagates the selector's demand to f's
    // input, so even `f {}` clashes Pre with Abs.
    let src = format!("{MOTIVATING}\ndef use = f {{}}");
    assert!(RemyInfer::new().infer_source(&src).is_err());
    // While f itself is fine.
    assert!(RemyInfer::new().infer_source(MOTIVATING).is_ok());
}

#[test]
fn intro_incompatible_field_type_is_rejected() {
    // The paper: "Our type inference rejects the latter call since the
    // type of field FOO is not unifiable" — f {foo="bad"} clashes
    // Str with Int.
    let src = format!("{MOTIVATING}\ndef use = f {{foo = \"bad\"}}");
    assert!(flow().infer_source(&src).is_err());
    // A call with the right field type is fine.
    let src_ok = format!("{MOTIVATING}\ndef use = f {{foo = 7}}");
    assert!(flow().infer_source(&src_ok).is_ok());
}

/// Example 1: the identity has type a.f1 → a.f2 with flow f2 → f1.
#[test]
fn example_1_identity_flow() {
    let report = flow().infer_source("def id x = x").expect("id checks");
    assert_eq!(report.defs[0].render(false), "forall a . a -> a");
    // The flow direction is observable: feeding a field-less record into
    // id cannot produce a record with a field...
    let bad = "def id x = x\ndef use = #foo (id {})";
    assert!(flow().infer_source(bad).is_err());
    // ...but a record that has the field keeps it through id.
    let good = "def id x = x\ndef use = #foo (id {foo = 1})";
    assert!(flow().infer_source(good).is_ok());
}

/// Example 2: passing the identity to itself returns the identity,
/// including its flow.
#[test]
fn example_2_identity_self_application() {
    let src = "def id x = x\ndef id2 = id id\ndef use = #foo (id2 {foo = 1})";
    let report = flow().infer_source(src).expect("id id preserves the flow");
    assert_eq!(report.defs[1].render(false), "forall a . a -> a");

    let bad = "def id x = x\ndef id2 = id id\ndef use = #foo (id2 {})";
    assert!(
        flow().infer_source(bad).is_err(),
        "flow f8→f7 of Ex. 2 survives"
    );
}

/// Section 2.4's `cond` function: λx.λy. if 0 then x else y, whose flow
/// states a field is in the output only if it is in both inputs.
#[test]
fn section_2_4_cond_flow() {
    let src = r"def cond x y = if 0 then x else y";
    let report = flow().infer_source(src).expect("cond checks");
    assert_eq!(report.defs[0].render(false), "forall a . a -> a -> a");

    // Selecting from the result demands the field from *both* branches.
    let both = r"def cond x y = if 0 then x else y
def use = #n (cond {n = 1} {n = 2})";
    assert!(flow().infer_source(both).is_ok());
    let one = r"def cond x y = if 0 then x else y
def use = #n (cond {n = 1} {})";
    assert!(
        flow().infer_source(one).is_err(),
        "a field must come from both branches"
    );
}

/// Although (REC-UPDATE) asserts the output flag (the field really is
/// there), conditional joins still work: (COND) relates the result to the
/// branches by implications, not equations.
#[test]
fn update_still_joins_with_bare_state() {
    let src = r"def g s = if c then @{foo = 1} s else s
def use = g {}";
    assert!(flow().infer_source(src).is_ok());
}

#[test]
fn update_replaces_field_type() {
    // Updating may change the field's type; the old content is dropped.
    let src = r#"def use = #x (@{x = 1} (@{x = "old"} {})) + 1"#;
    assert!(flow().infer_source(src).is_ok());
}

/// Fig. 9's baseline configuration (w/o fields) accepts field-unsafe
/// programs but still checks ordinary types.
#[test]
fn without_fields_configuration() {
    assert!(hm::infer_source("def use = #foo {}").is_ok());
    assert!(hm::infer_source(r#"def use = 1 + "s""#).is_err());
    let opts = Options {
        track_fields: false,
        ..Options::default()
    };
    assert!(Session::new(opts).infer_source("def use = #foo {}").is_ok());
}

/// Polymorphic recursion à la Milner–Mycroft (the paper's (LETREC) rule).
#[test]
fn polymorphic_recursion_with_records() {
    // The recursive call wraps the argument in a record: each level uses
    // f at a different type — untypeable in Damas–Milner.
    let src = "def depth x = if stop then 0 else 1 + depth {inner = x}";
    let report = flow().infer_source(src).expect("Mycroft fixpoint");
    assert_eq!(report.defs[0].render(false), "forall a . a -> Int");
}

#[test]
fn error_rendering_includes_path_notes() {
    let src = "def use = #foo {}";
    let err = flow().infer_source(src).expect_err("rejected");
    let rendered = err.render(src);
    assert!(rendered.contains("error:"), "{rendered}");
    assert!(
        rendered.contains("selected here") || rendered.contains("foo"),
        "explanation names the access: {rendered}"
    );
}
