//! End-to-end observability: a real inference session drives the global
//! collector, and the exporters produce well-formed artifacts.
//!
//! Everything here shares the process-wide collector, so the tests
//! serialize on a mutex and reset collected state up front.

use std::sync::Mutex;
use std::time::Instant;

use rowpoly::core::Session;
use rowpoly::lang::parse_program;
use rowpoly::obs;
use rowpoly::obs::json::Json;

static GLOBAL_COLLECTOR: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match GLOBAL_COLLECTOR.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn state_monad_source() -> String {
    std::fs::read_to_string(format!(
        "{}/programs/state_monad.rp",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("programs/state_monad.rp ships with the repository")
}

/// Runs the state-monad sample with global collection on and returns the
/// snapshot of everything it recorded.
fn traced_state_monad_snapshot() -> obs::Snapshot {
    obs::reset();
    obs::enable();
    let program = parse_program(&state_monad_source()).expect("parses");
    Session::default().infer_program(&program).expect("checks");
    let snap = obs::snapshot();
    obs::disable();
    obs::reset();
    snap
}

/// Golden test for the Chrome trace exporter over a real session: the
/// document parses as JSON, opens with a metadata record, keeps
/// timestamps monotone, and balances every `B` with an `E`.
#[test]
fn chrome_trace_of_session_is_well_formed() {
    let _g = lock();
    let snap = traced_state_monad_snapshot();

    let dir = std::env::temp_dir();
    let path = dir.join(format!("rowpoly-trace-test-{}.json", std::process::id()));
    obs::chrome::write_chrome_trace(&snap, &path).expect("trace written");
    let text = std::fs::read_to_string(&path).expect("trace readable");
    std::fs::remove_file(&path).ok();

    let doc = obs::json::parse(&text).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let ph = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap().to_string();
    assert_eq!(ph(&events[0]), "M", "metadata record first");

    // Duration events: monotone timestamps, balanced begin/end.
    let mut last_ts = f64::MIN;
    let mut depth: i64 = 0;
    let mut names = std::collections::BTreeSet::new();
    for e in events
        .iter()
        .filter(|e| matches!(ph(e).as_str(), "B" | "E"))
    {
        let ts = e.get("ts").and_then(Json::as_f64).expect("numeric ts");
        assert!(ts >= last_ts, "timestamps must be non-decreasing");
        last_ts = ts;
        match ph(e).as_str() {
            "B" => {
                depth += 1;
                names.insert(e.get("name").and_then(Json::as_str).unwrap().to_string());
            }
            _ => {
                depth -= 1;
                assert!(depth >= 0, "E without matching B");
            }
        }
    }
    assert_eq!(depth, 0, "every B balanced by an E");

    // The session's structure is visible: the driver span, one span per
    // definition, and all four paper phases.
    assert!(names.contains("session"), "missing session span: {names:?}");
    assert!(names.contains("def f") && names.contains("def main"));
    for phase in ["unify", "applys", "project", "sat"] {
        assert!(names.contains(phase), "missing {phase} span: {names:?}");
    }
}

/// The text report over a session run names all four paper phases and
/// the flushed structural counters.
#[test]
fn session_report_names_all_four_phases() {
    let _g = lock();
    let snap = traced_state_monad_snapshot();
    let report = obs::report::text_report(&snap);
    for phase in ["unify", "applys", "project", "sat"] {
        assert!(report.contains(phase), "report lacks {phase}:\n{report}");
    }
    for counter in ["unify.calls", "applys.calls", "sat.checks"] {
        assert!(
            report.contains(counter),
            "report lacks {counter}:\n{report}"
        );
    }

    // And the JSON form round-trips through the strict parser.
    let doc = obs::json::parse(&obs::report::json_report(&snap)).expect("valid JSON");
    let spans = doc.get("spans").expect("spans object");
    for phase in ["unify", "applys", "project", "sat"] {
        let span = spans
            .get(phase)
            .unwrap_or_else(|| panic!("no {phase} span"));
        assert!(span.get("count").and_then(Json::as_i64).unwrap() > 0);
    }
}

/// Phase buckets are exclusive: their sum never exceeds the recorded
/// wall time, even though projection runs nested inside `applyS` and
/// SAT checks run inside definition finishing.
#[test]
fn phase_buckets_sum_to_at_most_wall() {
    let _g = lock();
    let program = parse_program(&state_monad_source()).expect("parses");
    let start = Instant::now();
    let report = Session::default().infer_program(&program).expect("checks");
    let measured = start.elapsed();

    let s = &report.stats;
    let buckets = s.unify + s.applys + s.project + s.sat;
    assert!(
        buckets <= s.wall,
        "exclusive buckets {buckets:?} exceed recorded wall {s:?}"
    );
    assert!(
        s.wall <= measured,
        "recorded wall longer than enclosing timer"
    );
    assert!(s.unify_calls > 0 && s.applys_calls > 0 && s.sat_calls > 0);
}

/// The projection engine reports its elimination work through the
/// `project.*` counters, and on an ordinary record-heavy program every
/// elimination stays on the binary-implication fast path.
#[test]
fn projection_engine_counters_are_recorded() {
    let _g = lock();
    let snap = traced_state_monad_snapshot();
    let fastpath = snap.metrics.counter("project.elim.fastpath");
    let fallback = snap.metrics.counter("project.elim.fallback");
    assert!(
        fastpath > 0,
        "a record-heavy session must splice pivots on the fast path"
    );
    assert_eq!(
        fastpath + fallback,
        snap.metrics.counter("project.resolutions"),
        "fast path + fallback must account for every elimination"
    );
    // The subsumption filter's bookkeeping is consistent: nothing is
    // rejected by signature without having been checked.
    assert!(
        snap.metrics.counter("project.sig.pruned") <= snap.metrics.counter("project.sig.checks")
    );
}

/// Golden test for the per-worker Chrome-trace track layout produced by
/// a profiled batch run: stable tids (worker `w` → tid `w + 1`), one
/// `thread_name` metadata record per worker track, balanced spans per
/// track with per-track monotone timestamps, and thread-scoped instant
/// events for wave boundaries (plus steals/cache hits when they occur).
#[test]
fn profiled_batch_trace_has_stable_worker_tracks() {
    use rowpoly::batch::{check_sources, BatchOptions, FileInput};

    // Two files over a dependency chain each, so the run has several
    // groups and more than one wave.
    let inputs = vec![
        FileInput {
            path: "a.rp".to_string(),
            source: "def base = {x = 1}\ndef mid = #x base\ndef top = mid + 1".to_string(),
        },
        FileInput {
            path: "b.rp".to_string(),
            source: state_monad_source(),
        },
    ];
    let mut options = BatchOptions::in_memory(2);
    options.profile = true;
    let report = check_sources(inputs, &options);
    assert!(report.ok());
    let profile = report.profile.as_ref().expect("profile requested");

    let text = obs::chrome::chrome_trace_timelines(&profile.snapshot);
    let doc = obs::json::parse(&text).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let ph = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap().to_string();
    let tid = |e: &Json| e.get("tid").and_then(Json::as_i64).unwrap();

    // Metadata: process_name on tid 0 first, then one named track per
    // worker with tid = worker + 1, in worker order.
    assert_eq!(ph(&events[0]), "M");
    let thread_names: Vec<(i64, String)> = events
        .iter()
        .filter(|e| ph(e) == "M" && e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .map(|e| {
            (
                tid(e),
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            )
        })
        .collect();
    assert_eq!(
        thread_names.len(),
        profile.workers.len(),
        "one named track per worker"
    );
    for (i, (t, name)) in thread_names.iter().enumerate() {
        assert_eq!(*t, i as i64 + 1, "worker {i} must sit on tid {}", i + 1);
        assert_eq!(name, &format!("worker {i}"));
    }

    // Per track: timestamps monotone, B/E balanced, instants
    // thread-scoped. Globally: the document is ts-ordered.
    let mut global_last = f64::MIN;
    let mut per_track: std::collections::BTreeMap<i64, (f64, i64)> = Default::default();
    let mut instant_names = std::collections::BTreeSet::new();
    for e in events.iter().filter(|e| ph(e) != "M") {
        let ts = e.get("ts").and_then(Json::as_f64).expect("numeric ts");
        assert!(ts >= global_last, "document not globally ts-ordered");
        global_last = ts;
        let track = per_track.entry(tid(e)).or_insert((f64::MIN, 0));
        assert!(ts >= track.0, "track {} not monotone", tid(e));
        track.0 = ts;
        match ph(e).as_str() {
            "B" => track.1 += 1,
            "E" => {
                track.1 -= 1;
                assert!(track.1 >= 0, "E without B on tid {}", tid(e));
            }
            "i" => {
                assert_eq!(
                    e.get("s").and_then(Json::as_str),
                    Some("t"),
                    "instants must be thread-scoped"
                );
                instant_names.insert(e.get("name").and_then(Json::as_str).unwrap().to_string());
            }
            // Counter samples (allocator live/peak bytes) appear when
            // memory accounting is on during a profiled run.
            "C" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    for (t, (_, depth)) in &per_track {
        assert_eq!(*depth, 0, "unbalanced spans on tid {t}");
    }
    assert!(
        instant_names.iter().any(|n| n.starts_with("wave ")),
        "wave boundary markers missing: {instant_names:?}"
    );
    // Job spans carry the file:def labels on worker tracks.
    assert!(
        events.iter().any(|e| ph(e) == "B"
            && e.get("name")
                .and_then(Json::as_str)
                .is_some_and(|n| n.starts_with("a.rp:"))),
        "job spans must be labeled file:def"
    );
}

/// With collection disabled (the default), inference leaves no events or
/// metrics behind.
#[test]
fn disabled_collection_records_nothing() {
    let _g = lock();
    obs::disable();
    obs::reset();
    let program = parse_program(&state_monad_source()).expect("parses");
    Session::default().infer_program(&program).expect("checks");
    let snap = obs::snapshot();
    assert!(snap.events.is_empty(), "events recorded while disabled");
    assert!(snap.metrics.is_empty(), "metrics recorded while disabled");
}
