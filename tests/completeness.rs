//! Section 4.4: where the inference is (and is not) complete.

use rowpoly::core::Session;

fn flow() -> Session {
    Session::default()
}

/// The program `p` of Section 4.4: a λ-bound function argument is used at
/// two different types. The abstraction forces `proj` to have one type in
/// all its uses, so `g null` gets the type [a] → [a] → Int (not
/// [a] → [b] → Int) — the inference is backward-complete but not
/// forward-complete here.
#[test]
fn lambda_bound_arguments_are_monomorphic() {
    let src = r"def g proj xs ys = proj xs + proj ys
def h = g (\l . null l)";
    let report = flow().infer_source(src).expect("checks");
    assert_eq!(report.defs[1].render(false), "forall a . [a] -> [a] -> Int");

    // Consequently two different element types are rejected...
    let bad = format!("{src}\ndef use = h [1] [\"s\"]");
    assert!(flow().infer_source(&bad).is_err());
    // ...while equal ones are fine.
    let good = format!("{src}\ndef use = h [1] [2]");
    assert!(flow().infer_source(&good).is_ok());
}

/// The program `p'` of Section 4.4: with records, the same approximation
/// creates spurious flow between the two uses of `proj`, so the function
/// can only be applied to records containing *both* fields.
#[test]
fn spurious_flow_between_uses_of_a_functional_argument() {
    let src = r"def g proj xs ys = #foo (proj xs) + #bar (proj ys)
def id x = x";
    // Both fields present: accepted.
    let both = format!("{src}\ndef use = g id {{foo = 1, bar = 2}} {{foo = 1, bar = 2}}");
    assert!(flow().infer_source(&both).is_ok());
    // Only the respectively-selected field present: the optimal collecting
    // semantics would accept, the inference rejects (documented
    // incompleteness for reused higher-order arguments).
    let split = format!("{src}\ndef use = g id {{foo = 1}} {{bar = 2}}");
    assert!(
        flow().infer_source(&split).is_err(),
        "incompleteness of Section 4.4 reproduced"
    );
}

/// Let-bound functions do not suffer the approximation: each use
/// instantiates the scheme (and its flags) freshly.
#[test]
fn let_bound_functions_are_use_independent() {
    let src = r"def id x = x
def use = #foo (id {foo = 1}) + #bar (id {bar = 2})";
    assert!(
        flow().infer_source(src).is_ok(),
        "independent instantiations"
    );
}

/// Under Observation 1's conditions, annotations cannot rescue a rejected
/// program: rejection means a genuine failing path exists.
#[test]
fn rejection_is_semantic_for_first_order_programs() {
    use rowpoly::eval::explore_paths;
    use rowpoly::lang::parse_program;

    let src = r"def f s = if c then @{a = 1} s else s
def use = #a (f {})";
    assert!(flow().infer_source(src).is_err());
    let program = parse_program(src).unwrap();
    let summary = explore_paths(&program.to_expr(), 100_000, 64);
    assert!(summary.any_field_error(), "a real failing path exists");
}

/// Two independent calls of a let-bound updater may disagree about the
/// field's presence in their arguments (this is what implicit flag
/// generalization at let buys).
#[test]
fn updater_called_with_and_without_field() {
    let src = r"def upd s = @{foo = 0} s
def a = upd {foo = 1}
def b = upd {}
def use = #foo a + #foo b";
    assert!(flow().infer_source(src).is_ok());
}
