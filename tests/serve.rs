//! End-to-end tests of `rowpoly serve` — the incremental daemon's CLI
//! surface, driven as a subprocess over both front ends.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

use rowpoly::obs::json::{self, Json};

/// Runs `rowpoly serve` with `args`, feeding `input` on stdin and
/// returning the completed output.
fn serve(args: &[&str], input: &str, cwd: &Path) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rowpoly"))
        .arg("serve")
        .args(args)
        .current_dir(cwd)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("stdin accepts the script");
    child.wait_with_output().expect("binary exits")
}

/// Parses the line-delimited responses of a `--json-rpc` session.
fn responses(out: &Output) -> Vec<Json> {
    assert!(
        out.status.success(),
        "serve exited with {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("bad response line {l:?}: {e}")))
        .collect()
}

fn stat(update: &Json, name: &str) -> i64 {
    update
        .get("result")
        .and_then(|r| r.get("stats"))
        .and_then(|s| s.get(name))
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("stats.{name} missing in {update}"))
}

/// A scratch directory with its own programs and cache.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("rowpoly-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch { dir }
    }

    fn write(&self, name: &str, source: &str) {
        std::fs::write(self.dir.join(name), source).unwrap();
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn lifecycle_open_edit_reverdict_shutdown() {
    let s = Scratch::new("lifecycle");
    let script = concat!(
        r#"{"id":1,"method":"open","params":{"path":"a.rp","text":"def a = 1\ndef b = a + 1\ndef c = b + 1","version":1}}"#,
        "\n",
        // Edit `a`'s body without changing its closed scheme: only `a`
        // may recompute; `b` and `c` must reuse their verdicts.
        r#"{"id":2,"method":"edit","params":{"path":"a.rp","version":2,"text":"def a = 2\ndef b = a + 1\ndef c = b + 1"}}"#,
        "\n",
        // Whitespace-only edit: the pretty-printed groups are unchanged,
        // so zero verdicts recompute even though the text re-parses.
        r#"{"id":3,"method":"edit","params":{"path":"a.rp","version":3,"text":"def a = 2\n\ndef b = a   + 1\ndef c = b + 1"}}"#,
        "\n",
        r#"{"id":4,"method":"counters"}"#,
        "\n",
        r#"{"id":5,"method":"shutdown"}"#,
        "\n",
    );
    let out = serve(&["--json-rpc", "--no-cache"], script, &s.dir);
    let rs = responses(&out);
    assert_eq!(rs.len(), 5, "{rs:?}");

    let opened = &rs[0];
    assert_eq!(
        opened.get("result").and_then(|r| r.get("ok")),
        Some(&Json::Bool(true))
    );
    assert_eq!(
        stat(opened, "verdict_recomputed"),
        3,
        "cold open infers all"
    );

    let edited = &rs[1];
    assert_eq!(stat(edited, "verdict_recomputed"), 1, "only `a` re-ran");
    assert_eq!(
        stat(edited, "verdict_hits"),
        2,
        "unchanged defs reused their verdicts"
    );
    assert_eq!(stat(edited, "defs_recomputed"), 1);

    let whitespace = &rs[2];
    assert_eq!(
        stat(whitespace, "verdict_recomputed"),
        0,
        "whitespace never re-infers"
    );
    assert_eq!(stat(whitespace, "verdict_hits"), 3);
    assert_eq!(stat(whitespace, "parse_misses"), 1, "text did change");

    // Lifetime counters aggregate the same story: 4 recomputes total
    // (3 at open + 1 for the edit) across 3 revisions.
    let counters = rs[3].get("result").expect("counters");
    let verdict = counters
        .get("queries")
        .and_then(|q| q.get("verdict"))
        .expect("verdict counters");
    assert_eq!(verdict.get("recomputed").and_then(Json::as_i64), Some(4));
    assert_eq!(verdict.get("hits").and_then(Json::as_i64), Some(5));
    assert_eq!(
        counters
            .get("edits")
            .and_then(|e| e.get("count"))
            .and_then(Json::as_i64),
        Some(2)
    );

    assert_eq!(
        rs[4].get("result").and_then(|r| r.get("ok")),
        Some(&Json::Bool(true))
    );
}

#[test]
fn diagnostics_are_byte_identical_with_one_shot_check_explain() {
    let s = Scratch::new("parity");
    let source = "def broken = #missing {}\ndef fine = 1\n";
    s.write("bad.rp", source);

    // One-shot reference: `rowpoly check --explain` renders the error
    // block as `path: def: error` plus the explained diagnostic
    // indented by two spaces.
    let check = Command::new(env!("CARGO_BIN_EXE_rowpoly"))
        .args(["check", "--explain", "--no-cache", "bad.rp"])
        .current_dir(&s.dir)
        .output()
        .expect("binary runs");
    let check_text = String::from_utf8_lossy(&check.stdout).into_owned();
    assert!(check_text.contains("broken: error"), "got: {check_text}");

    // Daemon: open the same text and take the diagnostic's `rendered`.
    let script = format!(
        "{}\n{}\n",
        Json::obj(vec![
            ("id", Json::Int(1)),
            ("method", Json::Str("open".into())),
            (
                "params",
                Json::obj(vec![
                    ("path", Json::Str("bad.rp".into())),
                    ("text", Json::Str(source.into())),
                    ("version", Json::Int(1)),
                ]),
            ),
        ])
        .render(),
        r#"{"id":2,"method":"shutdown"}"#
    );
    let rs = responses(&serve(&["--json-rpc", "--no-cache"], &script, &s.dir));
    let diags = rs[0]
        .get("result")
        .and_then(|r| r.get("diagnostics"))
        .and_then(Json::as_arr)
        .expect("diagnostics");
    assert_eq!(diags.len(), 1, "{:?}", rs[0]);
    assert_eq!(diags[0].get("def").and_then(Json::as_str), Some("broken"));
    let rendered = diags[0]
        .get("rendered")
        .and_then(Json::as_str)
        .expect("rendered");

    // Reconstruct the exact block the one-shot report prints from the
    // daemon's rendering. Byte-identical or the test fails.
    let mut expected = String::from("bad.rp: broken: error\n");
    for line in rendered.lines() {
        expected.push_str("  ");
        expected.push_str(line);
        expected.push('\n');
    }
    assert!(
        check_text.contains(&expected),
        "serve rendering diverged from `check --explain`.\nexpected block:\n{expected}\ncheck output:\n{check_text}"
    );
}

#[test]
fn lsp_stdio_session_publishes_diagnostics_and_hovers() {
    let s = Scratch::new("lsp");
    let bodies = [
        r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}"#.to_string(),
        r#"{"jsonrpc":"2.0","method":"initialized"}"#.to_string(),
        r#"{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{"textDocument":{"uri":"file:///a.rp","version":1,"text":"def inc x = x + 1"}}}"#.to_string(),
        r#"{"jsonrpc":"2.0","id":2,"method":"textDocument/hover","params":{"textDocument":{"uri":"file:///a.rp"},"position":{"line":0,"character":4}}}"#.to_string(),
        r#"{"jsonrpc":"2.0","id":3,"method":"shutdown"}"#.to_string(),
        r#"{"jsonrpc":"2.0","method":"exit"}"#.to_string(),
    ];
    let input: String = bodies
        .iter()
        .map(|b| format!("Content-Length: {}\r\n\r\n{b}", b.len()))
        .collect();
    let out = serve(&["--stdio", "--no-cache"], &input, &s.dir);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("\"textDocumentSync\""), "got: {text}");
    assert!(
        text.contains("textDocument/publishDiagnostics"),
        "got: {text}"
    );
    assert!(text.contains("inc : Int -> Int"), "got: {text}");
}

#[test]
fn disk_cache_carries_verdicts_across_daemon_sessions() {
    let s = Scratch::new("warm");
    let open = r#"{"id":1,"method":"open","params":{"path":"a.rp","text":"def a = 1\ndef b = a + 1","version":1}}"#;
    let script = format!("{open}\n{}\n", r#"{"id":2,"method":"shutdown"}"#);

    // Session 1 computes and persists on shutdown.
    let cold = responses(&serve(&["--json-rpc"], &script, &s.dir));
    assert_eq!(stat(&cold[0], "verdict_recomputed"), 2);
    assert!(
        s.dir.join(".rowpoly-cache").join("cache.json").is_file(),
        "shutdown did not persist the cache"
    );

    // Session 2 answers every verdict from disk: nothing recomputes.
    let warm = responses(&serve(&["--json-rpc"], &script, &s.dir));
    assert_eq!(stat(&warm[0], "verdict_recomputed"), 0, "{:?}", warm[0]);
    assert_eq!(stat(&warm[0], "verdict_disk_hits"), 2);

    // The persistent layer is the batch checker's own cache: a batch
    // run over the same content hits what the daemon stored.
    s.write("a.rp", "def a = 1\ndef b = a + 1");
    let check = Command::new(env!("CARGO_BIN_EXE_rowpoly"))
        .args(["check", "a.rp", "--json"])
        .current_dir(&s.dir)
        .output()
        .expect("binary runs");
    assert!(check.status.success());
    let json = String::from_utf8_lossy(&check.stdout).into_owned();
    let hits = json
        .split("\"cache_hits\":")
        .nth(1)
        .and_then(|t| t.split([',', '}']).next())
        .and_then(|n| n.trim().parse::<u64>().ok())
        .expect("cache_hits in JSON report");
    assert!(hits > 0, "batch run missed the daemon's cache: {json}");
}
