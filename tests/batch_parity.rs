//! Batch-vs-serial parity on generated decoder workloads.
//!
//! The batch engine must agree with the serial [`Session`] driver on
//! both verdicts and rendered schemes. This is the regression net for
//! cross-engine scheme transport: dependency schemes travel between
//! engines in closed form and are renamed into the consumer's flag and
//! variable spaces (`import_scheme`); a bug there shows up as a
//! spurious "field never added" rejection or a drifted scheme on
//! exactly the deep call-chains these workloads generate.

use rowpoly::batch::{check_sources, BatchOptions, FileInput, Verdict};
use rowpoly::core::Session;
use rowpoly::gen::generate_with_lines;

#[test]
fn batch_matches_serial_on_generated_decoders() {
    for seed in [1u64, 7, 42] {
        let (program, src) = generate_with_lines(200, true, seed);
        let serial = Session::default()
            .infer_program(&program)
            .expect("serial driver checks the generated workload");

        let report = check_sources(
            vec![FileInput {
                path: "gen.rp".to_string(),
                source: src,
            }],
            &BatchOptions::in_memory(4),
        );
        assert!(
            report.ok(),
            "batch rejected a workload the serial driver accepts (seed {seed}):\n{}",
            report.render()
        );

        let defs = report.files[0].defs.as_ref().expect("source parses");
        assert_eq!(defs.len(), serial.defs.len());
        for (batch_def, serial_def) in defs.iter().zip(&serial.defs) {
            match &batch_def.verdict {
                Verdict::Ok { scheme, .. } => assert_eq!(
                    scheme,
                    &serial_def.render(false),
                    "scheme drift for `{}` (seed {seed})",
                    batch_def.name
                ),
                other => panic!(
                    "`{}` did not check: {other:?} (seed {seed})",
                    batch_def.name
                ),
            }
        }
    }
}
