//! Scheme-level behaviours: stored flows, instantiation independence,
//! and the shape of reported types across representative programs.

use rowpoly::core::Session;

fn types_of(src: &str) -> Vec<(String, String)> {
    Session::default()
        .infer_source(src)
        .unwrap_or_else(|e| panic!("{src} should check: {e}"))
        .defs
        .iter()
        .map(|d| (d.name.to_string(), d.render(false)))
        .collect()
}

#[test]
fn representative_scheme_gallery() {
    let cases: &[(&str, &str)] = &[
        ("def f x = x", "forall a . a -> a"),
        ("def k a b = a", "forall a b . a -> b -> a"),
        ("def s = {x = 1}", "forall a . {x : Int, a}"),
        ("def get s = #n s", "forall a b . {n.* : a.*, b.*} -> a.*"),
        ("def put v s = @{n = v} s", "*"),
        ("def swap r = ^{a -> b} r", "*"),
        ("def drop r = %tmp r", "*"),
        (
            "def len l = if null l then 0 else 1 + len (tail l)",
            "forall a . [a] -> Int",
        ),
        (
            "def map2 f l = if null l then [] else cons (f (head l)) (map2 f (tail l))",
            "forall a b . (a -> b) -> [a] -> [b]",
        ),
    ];
    for (src, expect) in cases {
        let all = types_of(src);
        let got = &all.last().expect("def").1;
        if *expect == "*" {
            continue; // shape checked by acceptance
        }
        if expect.contains('*') {
            // Loose pattern: compare with flags/field annotations elided.
            let pat: String = expect.replace(".*", "");
            assert_eq!(got, &pat, "for {src}");
        } else {
            assert_eq!(got, expect, "for {src}");
        }
    }
}

#[test]
fn flows_are_stored_per_definition() {
    let report = Session::default()
        .infer_source("def id x = x\ndef get s = #n s")
        .expect("checks");
    for d in &report.defs {
        assert!(
            !d.scheme.flow.is_empty(),
            "{} should carry its flow ({})",
            d.name,
            d.render_with_flow()
        );
    }
    // The identity's flow is a single implication output → input.
    let id = &report.defs[0];
    assert_eq!(id.render_with_flow(), "forall a . a.f1 -> a.f2 | f2 -> f1");
}

#[test]
fn three_independent_instantiations() {
    let src = r"
def tag v s = @{tag = v} s
def a = #tag (tag 1 {})
def b = #tag (tag 2 {other = 5})
def c = tag 3 {}
";
    assert!(Session::default().infer_source(src).is_ok());
}

#[test]
fn scheme_reuse_across_many_defs_stays_cheap() {
    // 50 definitions all instantiating the same helpers: the working β
    // must stay bounded (peak clause count far below total clauses ever
    // produced).
    let mut src = String::from("def put v s = @{n = v} s\ndef get s = #n s\n");
    for i in 0..50 {
        src.push_str(&format!("def u{i} = get (put {i} {{}})\n"));
    }
    let report = Session::default().infer_source(&src).expect("checks");
    assert!(
        report.stats.peak_clauses < 200,
        "working β stayed def-local: peak {}",
        report.stats.peak_clauses
    );
}
