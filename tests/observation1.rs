//! Observation 1, tested differentially: for first-order record pipelines
//! (conditionals abstracted to non-deterministic choice, no reused
//! higher-order record functions), the flow inference rejects a program
//! *iff* some branch-choice path accesses a field that was never added.

use rowpoly::core::Session;
use rowpoly::eval::explore_paths;
use rowpoly::gen::{random_pipeline, FuzzParams};
use rowpoly::lang::pretty_expr;

/// Runs one seed through both the inference and exhaustive path
/// exploration; returns (accepted, has_failing_path, program text).
fn verdicts(seed: u64) -> (bool, bool, String) {
    let expr = random_pipeline(seed, FuzzParams::default());
    let src = pretty_expr(&expr);
    let accepted = Session::default().infer_expr(&expr).is_ok();
    let summary = explore_paths(&expr, 200_000, 4096);
    assert_eq!(summary.unknown, 0, "pipelines terminate within fuel");
    assert_eq!(summary.other_errors, 0, "pipelines are skeleton-well-typed");
    (accepted, summary.any_field_error(), src)
}

/// Soundness direction: accepted ⇒ no failing path. This direction must
/// hold unconditionally.
#[test]
fn accepted_programs_have_no_failing_path() {
    for seed in 0..400 {
        let (accepted, failing, src) = verdicts(seed);
        if accepted {
            assert!(
                !failing,
                "seed {seed}: inference accepted a program with a failing path\n{src}"
            );
        }
    }
}

/// Completeness direction (Observation 1): rejected ⇒ some failing path.
/// Holds on this fragment by the paper's Observation 1.
#[test]
fn rejected_programs_have_a_failing_path() {
    for seed in 0..400 {
        let (accepted, failing, src) = verdicts(seed);
        if !accepted {
            assert!(
                failing,
                "seed {seed}: inference rejected a program whose every path is safe\n{src}"
            );
        }
    }
}

/// Sanity: the fuzzer exercises both verdicts (otherwise the properties
/// above are vacuous).
#[test]
fn fuzzer_covers_both_verdicts() {
    let mut accepted = 0;
    let mut rejected = 0;
    for seed in 0..200 {
        if verdicts(seed).0 {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    assert!(
        accepted > 10,
        "only {accepted} accepted programs in 200 seeds"
    );
    assert!(
        rejected > 10,
        "only {rejected} rejected programs in 200 seeds"
    );
}
