//! Section 5 extensions: removal, renaming, concatenation, `when`, and
//! the conditional-unification (SMT) repair of Pottier's rule.

use rowpoly::core::{Options, Session};

fn flow() -> Session {
    Session::default()
}

#[test]
fn removal_makes_field_inaccessible() {
    assert!(flow().infer_source("def use = #a (%a {a = 1})").is_err());
    assert!(flow()
        .infer_source("def use = #b (%a {a = 1, b = 2})")
        .is_ok());
    // Removing an absent field is fine.
    assert!(flow().infer_source("def use = %a {}").is_ok());
    // Re-adding after removal works.
    assert!(flow()
        .infer_source("def use = #a (@{a = 2} (%a {a = 1}))")
        .is_ok());
}

#[test]
fn renaming_moves_existence_and_content() {
    assert!(flow()
        .infer_source("def use = #b (^{a -> b} {a = 1}) + 1")
        .is_ok());
    // The source is gone afterwards.
    assert!(flow()
        .infer_source("def use = #a (^{a -> b} {a = 1})")
        .is_err());
    // Renaming requires the target to be absent.
    assert!(flow()
        .infer_source("def use = ^{a -> b} {a = 1, b = 2}")
        .is_err());
    // Renaming something absent yields an absent target.
    assert!(flow().infer_source("def use = #b (^{a -> b} {})").is_err());
}

#[test]
fn asymmetric_concat_unions_fields() {
    let s = flow();
    assert!(s.infer_source("def use = #a ({a = 1} @ {b = 2})").is_ok());
    assert!(s.infer_source("def use = #b ({a = 1} @ {b = 2})").is_ok());
    assert!(s.infer_source("def use = #c ({a = 1} @ {b = 2})").is_err());
    // Overlap is allowed (right bias); the field types must unify.
    assert!(s
        .infer_source("def use = #a ({a = 1} @ {a = 2}) + 1")
        .is_ok());
    assert!(s.infer_source(r#"def use = {a = 1} @ {a = "s"}"#).is_err());
}

#[test]
fn symmetric_concat_rejects_overlap() {
    let s = flow();
    assert!(s.infer_source("def use = #a ({a = 1} @@ {b = 2})").is_ok());
    assert!(
        s.infer_source("def use = {a = 1} @@ {a = 2}").is_err(),
        "a field present in both operands of @@ is a type error"
    );
    assert!(s.infer_source("def use = {} @@ {a = 1}").is_ok());
}

#[test]
fn concat_field_from_either_side_flows_to_output() {
    // Unknown-record concatenation through a function.
    let src = r"def join x y = x @ y
def use = #a (join {a = 1} {})";
    assert!(flow().infer_source(src).is_ok());
    let src2 = r"def join x y = x @ y
def use = #a (join {} {})";
    assert!(flow().infer_source(src2).is_err());
}

#[test]
fn sat_class_matches_paper_table() {
    use rowpoly::boolfun::SatClass;
    let s = flow();
    // Select/update only → two-variable Horn clauses, 2-SAT.
    let r = s.infer_source("def use = #a (@{a = 1} {})").unwrap();
    assert!(r.sat_class <= SatClass::TwoSat, "got {:?}", r.sat_class);
    // Asymmetric concatenation leaves the 2-SAT class but stays Horn-ish.
    let r = s.infer_source("def use = #a ({a = 1} @ {b = 2})").unwrap();
    assert!(r.sat_class <= SatClass::DualHorn, "got {:?}", r.sat_class);
    // Symmetric concatenation requires general CNF.
    let r = s.infer_source("def use = {a = 1} @@ {b = 2}").unwrap();
    assert_eq!(r.sat_class, SatClass::General);
}

#[test]
fn when_grants_the_field_in_the_then_branch() {
    // Reading the tested field inside `then` is safe even though the
    // record may lack it.
    let src = r"def read s = when foo in s then #foo s else 0
def a = read {foo = 1}
def b = read {}";
    assert!(
        flow().infer_source(src).is_ok(),
        "when-guard licenses the select"
    );
}

#[test]
fn when_else_branch_does_not_get_the_field() {
    let src = r"def read s = when foo in s then 0 else #foo s
def b = read {}";
    assert!(
        flow().infer_source(src).is_err(),
        "selecting the tested field in the else branch of an empty record"
    );
}

#[test]
fn when_requires_general_sat() {
    use rowpoly::boolfun::SatClass;
    // With Int-typed branches the guarded clauses stay Horn; the general
    // case needs record-typed branches, whose result-flow implications
    // `ff → (*tr+ ⇒ *tσt+)` and `¬ff → (*tr+ ⇒ *tσe+)` mix polarities.
    let horn_only = r"def read s = when foo in s then #foo s else 0
def use = read {}";
    let r = flow().infer_source(horn_only).unwrap();
    assert!(r.sat_class > SatClass::TwoSat, "got {:?}", r.sat_class);

    let general = r"def pick s = when foo in s then s else @{foo = 9} s
def use = #foo (pick {})";
    let r = flow().infer_source(general).unwrap();
    assert_eq!(r.sat_class, SatClass::General);
}

#[test]
fn when_default_value_pattern() {
    // The paper's Section 7 example: supply a default if none present.
    let src = r"def getdef s = when n in s then #n s else 42
def a = getdef {}
def b = getdef {n = 7}";
    assert!(flow().infer_source(src).is_ok());
}

#[test]
fn extensions_respect_track_fields_off() {
    let opts = Options {
        track_fields: false,
        ..Options::default()
    };
    let s = Session::new(opts);
    // Without flags nothing about field existence is checked.
    assert!(s.infer_source("def use = #a (%a {a = 1})").is_ok());
    assert!(s.infer_source("def use = {a = 1} @@ {a = 2}").is_ok());
}

mod smt {
    use rowpoly::boolfun::{Cnf, FlagAlloc, Lit};
    use rowpoly::core::smt::{solve_conditional, CondEq};
    use rowpoly::types::{Ty, VarAlloc};

    /// Section 1.1: `{} @ (if c then {f=42} else {f="42"})` — rejected by
    /// Pottier's simplified rule D'r (and by our eager unification), but
    /// accepted once field types are constrained only under the branch
    /// guard.
    #[test]
    fn pottier_example_accepted_conditionally() {
        let mut flags = FlagAlloc::new();
        let mut vars = VarAlloc::new();
        let g = flags.fresh();
        let d = Ty::svar(vars.fresh());
        let eqs = [
            CondEq::when(Lit::pos(g), d.clone(), Ty::Int),
            CondEq::when(Lit::neg(g), d.clone(), Ty::Str),
        ];
        assert!(solve_conditional(&Cnf::top(), &eqs, &mut vars).is_sat());
    }

    /// With an access demanding a *specific* type, only the compatible
    /// branch survives; demanding both is unsatisfiable.
    #[test]
    fn access_restricts_branches() {
        let mut flags = FlagAlloc::new();
        let mut vars = VarAlloc::new();
        let g = flags.fresh();
        let d = Ty::svar(vars.fresh());
        let eqs = [
            CondEq::when(Lit::pos(g), d.clone(), Ty::Int),
            CondEq::when(Lit::neg(g), d.clone(), Ty::Str),
            CondEq::always(d.clone(), Ty::Int),
        ];
        match solve_conditional(&Cnf::top(), &eqs, &mut vars) {
            rowpoly::core::smt::SmtOutcome::Sat { model, .. } => {
                assert_eq!(model.get(&g), Some(&true), "only the Int branch fits");
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }
}
