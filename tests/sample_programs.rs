//! The sample programs shipped in `programs/` behave as advertised:
//! the well-typed ones check and run, the ill-typed one is rejected.

use rowpoly::core::Session;
use rowpoly::eval::{eval_program, Value};
use rowpoly::lang::parse_program;

fn load(name: &str) -> String {
    std::fs::read_to_string(format!("{}/programs/{name}", env!("CARGO_MANIFEST_DIR")))
        .unwrap_or_else(|e| panic!("missing sample {name}: {e}"))
}

#[test]
fn state_monad_sample_checks_and_runs() {
    let src = load("state_monad.rp");
    Session::default().infer_source(&src).expect("checks");
    // `some_condition` is free, so only type-check here; a closed variant
    // runs end to end.
    let closed = src.replace("some_condition", "1");
    let program = parse_program(&closed).unwrap();
    assert!(matches!(
        eval_program(&program, 100_000),
        Ok(Value::Int(42))
    ));
}

#[test]
fn attributes_sample_checks() {
    let src = load("attributes.rp");
    Session::default().infer_source(&src).expect("checks");
    let closed = src.replace("optimize", "1");
    let program = parse_program(&closed).unwrap();
    assert!(matches!(
        eval_program(&program, 100_000),
        Ok(Value::Int(2014))
    ));
    let closed_off = src.replace("optimize", "0");
    let program = parse_program(&closed_off).unwrap();
    assert!(matches!(
        eval_program(&program, 100_000),
        Ok(Value::Int(-1))
    ));
}

#[test]
fn merge_sample_checks_and_runs() {
    let src = load("merge.rp");
    Session::default().infer_source(&src).expect("checks");
    let program = parse_program(&src).unwrap();
    assert!(matches!(
        eval_program(&program, 100_000),
        Ok(Value::Int(43))
    ));
}

#[test]
fn bad_select_sample_is_rejected_with_explanation() {
    let src = load("bad_select.rp");
    let err = Session::default()
        .infer_source(&src)
        .expect_err("ill-typed");
    let rendered = err.render(&src);
    assert!(rendered.contains("colour"), "{rendered}");
}
