//! Whole-pipeline tests: generate → pretty-print → re-parse → infer →
//! evaluate, plus agreement between the inference configurations.

use rowpoly::core::{hm, Compaction, Options, Session};
use rowpoly::eval::{eval_program, Value};
use rowpoly::gen::{generate, generate_with_lines, GenParams};
use rowpoly::lang::{parse_program, pretty_program};

/// Generated decoder workloads round-trip through the printer and check
/// in every configuration.
#[test]
fn decoder_workloads_roundtrip_and_check() {
    let params = GenParams {
        groups: 2,
        with_sem: true,
        ..GenParams::default()
    };
    let program = generate(&params);
    let src = pretty_program(&program);
    let reparsed = parse_program(&src).expect("generated source parses");
    assert_eq!(reparsed.defs.len(), program.defs.len());

    // Both AST and re-parsed source give the same verdict and types.
    let session = Session::default();
    let r1 = session.infer_program(&program).expect("AST checks");
    let r2 = session.infer_program(&reparsed).expect("source checks");
    for (a, b) in r1.defs.iter().zip(&r2.defs) {
        assert_eq!(a.render(false), b.render(false), "def {}", a.name);
    }
}

/// The flow inference accepts a strict subset of the flow-free inference:
/// whatever the "w. fields" configuration accepts, "w/o fields" accepts
/// with the identical skeleton.
#[test]
fn flow_accepts_subset_of_skeleton_inference() {
    let (program, _) = generate_with_lines(300, false, 9);
    let with = Session::default()
        .infer_program(&program)
        .expect("w. fields");
    let without = hm::session().infer_program(&program).expect("w/o fields");
    for (a, b) in with.defs.iter().zip(&without.defs) {
        assert_eq!(
            a.render(false),
            b.render(false),
            "skeletons agree for {}",
            a.name
        );
    }
}

/// On small programs the two compaction strategies agree…
#[test]
fn compaction_strategies_agree_on_small_programs() {
    let cases = [
        "def f s = if c then (let s2 = @{foo = 42} s; v = #foo s2 in s2) else s\ndef use = f {}",
        "def id x = x\ndef use = #a (id {a = 1})",
        "def g s = @{b = 1} s\ndef use = #b (g (if c then {d = 1} else {b = 2}))",
        "def use = #a ({a = 1} @ {b = 2})",
    ];
    for src in cases {
        let agg = Session::default().infer_source(src).is_ok();
        let perdef = Session::new(Options {
            compaction: Compaction::PerDef,
            ..Options::default()
        })
        .infer_source(src)
        .is_ok();
        assert_eq!(agg, perdef, "verdicts diverge on {src}");
    }
}

/// …but deferring stale-flag projection to definition boundaries is
/// *incorrect*, exactly as the paper's Section 6 warns: expansion in the
/// presence of stale bi-implications aliases flag copies, and the
/// deferred mode over-rejects programs the aggressive (default) mode
/// correctly accepts. This reproduces the bug class the paper describes
/// having to fix.
#[test]
fn perdef_compaction_reproduces_the_section_6_bug() {
    let (program, _) = generate_with_lines(200, false, 42);
    assert!(
        Session::default().infer_program(&program).is_ok(),
        "the workload is well-typed"
    );
    let perdef = Session::new(Options {
        compaction: Compaction::PerDef,
        ..Options::default()
    })
    .infer_program(&program);
    assert!(
        perdef.is_err(),
        "stale flags must be projected aggressively (Section 6); if this \
         starts passing, the witness program no longer triggers the alias"
    );
}

/// The two unifier backends agree on whole programs.
#[test]
fn unifier_backends_agree_on_programs() {
    use rowpoly::core::Unifier;
    let (program, _) = generate_with_lines(300, true, 13);
    let subst = Session::default()
        .infer_program(&program)
        .expect("substitution backend");
    let uf = Session::new(Options {
        unifier: Unifier::UnionFind,
        ..Options::default()
    })
    .infer_program(&program)
    .expect("union-find backend");
    for (a, b) in subst.defs.iter().zip(&uf.defs) {
        assert_eq!(a.render(false), b.render(false), "def {}", a.name);
    }
}

/// The environment-version ablation does not change results, only cost.
#[test]
fn env_version_ablation_preserves_verdicts() {
    let (program, _) = generate_with_lines(300, false, 11);
    let on = Session::default()
        .infer_program(&program)
        .expect("with versions");
    let off = Session::new(Options {
        env_versions: false,
        ..Options::default()
    })
    .infer_program(&program)
    .expect("without versions");
    for (a, b) in on.defs.iter().zip(&off.defs) {
        assert_eq!(a.render(false), b.render(false));
    }
}

/// A checked program evaluates to the expected value.
#[test]
fn checked_program_evaluates() {
    let src = r"
def mk    = {acc = 0, step = 3}
def bump s = @{acc = #acc s + #step s} s
def main  = #acc (bump (bump mk))
";
    let program = parse_program(src).unwrap();
    Session::default().infer_program(&program).expect("checks");
    match eval_program(&program, 100_000) {
        Ok(Value::Int(n)) => assert_eq!(n, 6),
        other => panic!("expected 6, got {other:?}"),
    }
}

/// Generated decoder drivers actually run under the interpreter.
#[test]
fn generated_decoders_execute() {
    let params = GenParams {
        groups: 1,
        decoders_per_group: 3,
        ..GenParams::default()
    };
    let program = generate(&params);
    Session::default().infer_program(&program).expect("checks");
    match eval_program(&program, 2_000_000) {
        Ok(Value::Int(_)) => {}
        other => panic!("decoder driver should produce an Int, got {other:?}"),
    }
}

/// Error messages point into the offending source.
#[test]
fn diagnostics_render_against_source() {
    let src = "def mk = {a = 1}\ndef use = #missing mk";
    let err = Session::default()
        .infer_source(src)
        .expect_err("missing field");
    let rendered = err.render(src);
    assert!(rendered.contains("missing"), "{rendered}");
    assert!(rendered.contains("-->"), "has a location: {rendered}");
}
