//! Section 6's implementation anecdotes, as executable programs.

use rowpoly::core::{hm, Session};

fn flow() -> Session {
    Session::default()
}

/// "One problem we came across was that we needed to store a monadic
/// action inside the state of the monad itself. However, extracting this
/// monad and running it will unify the type of the field holding the
/// monad with the monad type itself. This leads to an occurs check since
/// both monad states share at least the same row variable."
#[test]
fn storing_an_action_in_the_state_trips_the_occurs_check() {
    // `act` is a state-transformer stored in the state; running it on its
    // own carrier record demands s ~ {act : s -> s, ...s}.
    let src = r"
def install s = @{act = \st . @{done = 1} st} s
def run s = (#act s) s
def go = run (install {})
";
    let err = flow().infer_source(src).expect_err("occurs check");
    let message = err.to_string();
    assert!(message.contains("infinite type"), "got: {message}");
    // The flow-free configuration hits the same occurs check — this is a
    // type-term problem, not a flag problem.
    assert!(hm::infer_source(src).is_err());
}

/// "Our solution was to define an operator to remove a record field." —
/// extracting the action and removing its field first breaks the cycle.
#[test]
fn removing_the_field_first_is_the_papers_workaround() {
    let src = r"
def install s = @{act = \st . @{done = 1} st} s
def run s = (#act s) (%act s)
def go = #done (run (install {}))
";
    let report = flow().infer_source(src).expect("removal breaks the cycle");
    assert_eq!(report.defs.last().expect("go").render(false), "Int");
}

/// Example 4 of the paper (Section 4.2): inside
/// `f x = let g y = if null [x, y] then g 7 else …`, the list literal
/// equates the types of x and y, so the recursive call's instance is
/// `b → j` — the argument type is pinned to `f`'s parameter while the
/// result stays fresh.
#[test]
fn example_4_recursive_instance_under_equated_parameters() {
    // Make the shapes observable: g's argument type must equal x's, so
    // calling f at Int and using g at Str must fail...
    let bad = r#"
def f x = let g y = if null [x, y] then g 7 else y
          in g "str"
"#;
    assert!(flow().infer_source(bad).is_err(), "y is pinned to x's type");

    // ...while a consistent program checks, with f : Int -> Int (the
    // recursive call g 7 forces x : Int through the [x, y] equation).
    let good = r"
def f x = let g y = if null [x, y] then g 7 else y
          in g x
";
    let report = flow().infer_source(good).expect("checks");
    assert_eq!(report.defs[0].render(false), "Int -> Int");
}

/// The version-tag optimisation of Section 6 in its original form: the
/// meet of two identical environments is the identity. Observable as a
/// performance property and, indirectly, as determinism across the knob.
#[test]
fn version_tags_do_not_change_semantics() {
    use rowpoly::core::Options;
    let src = r"
def h s = if c then @{a = 1} s else @{a = 2} s
def use = #a (h {})
";
    let on = Session::default().infer_source(src);
    let off = Session::new(Options {
        env_versions: false,
        ..Options::default()
    })
    .infer_source(src);
    assert_eq!(on.is_ok(), off.is_ok());
    let (on, off) = (on.unwrap(), off.unwrap());
    for (a, b) in on.defs.iter().zip(&off.defs) {
        assert_eq!(a.render(false), b.render(false));
    }
}
