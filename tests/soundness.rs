//! Soundness: well-typed programs do not go wrong (Lemma 6), checked by
//! running accepted programs concretely and through path exploration.

use rowpoly::core::Session;
use rowpoly::eval::{eval, explore_paths, RuntimeError};
use rowpoly::gen::{random_pipeline, FuzzParams};
use rowpoly::lang::{parse_expr, pretty_expr};
use rowpoly::obs::cases;
use rowpoly::obs::rng::SplitMix64;

/// Concrete evaluation of an accepted closed program never produces a
/// field error (`Ω`).
#[test]
fn accepted_closed_programs_run_clean() {
    let cases = [
        "#foo (@{foo = 42} {})",
        "let r = {a = 1, b = 2} in #a r + #b r",
        "let f = \\s . @{x = #a s} s in #x (f {a = 5})",
        "#b (^{a -> b} {a = 1})",
        "#a ({a = 1} @ {b = 2}) + #b ({a = 1} @@ {b = 2})",
        "let r = {a = 1} in when a in r then #a r else 0",
        "let fact n = if n == 0 then 1 else n * fact (n - 1) in fact 6",
        "head [1, 2] + head (tail [1, 2])",
    ];
    let session = Session::default();
    for src in cases {
        let expr = parse_expr(src).expect("parses");
        session
            .infer_expr(&expr)
            .unwrap_or_else(|e| panic!("{src} should check: {e}"));
        match eval(&expr, 1_000_000) {
            Ok(_) => {}
            Err(e) => {
                assert!(
                    !e.is_field_error(),
                    "accepted program hit field error {e}: {src}"
                );
                panic!("accepted program got stuck ({e}): {src}");
            }
        }
    }
}

/// Property form of Lemma 6 on random pipelines: acceptance implies no
/// path reaches a field error, and concrete evaluation (when the
/// oracle is irrelevant) returns a value.
#[test]
fn prop_accepted_pipelines_never_hit_field_errors() {
    let mut rng = SplitMix64::seed_from_u64(0x50BD);
    for _ in 0..cases(128) {
        let seed = rng.gen_range(0u64..5_000);
        let expr = random_pipeline(seed, FuzzParams::default());
        if Session::default().infer_expr(&expr).is_ok() {
            let summary = explore_paths(&expr, 200_000, 4096);
            assert_eq!(
                summary.field_errors,
                0,
                "seed {} unsound: {}",
                seed,
                pretty_expr(&expr)
            );
        }
    }
}

/// The inference verdict is deterministic.
#[test]
fn prop_inference_is_deterministic() {
    let mut rng = SplitMix64::seed_from_u64(0x50BE);
    for _ in 0..cases(128) {
        let seed = rng.gen_range(0u64..1_000);
        let expr = random_pipeline(seed, FuzzParams::default());
        let a = Session::default().infer_expr(&expr).is_ok();
        let b = Session::default().infer_expr(&expr).is_ok();
        assert_eq!(a, b);
    }
}

/// Rejected programs fail at runtime on *some* path; spot-check that the
/// reported field matches the actual runtime error.
#[test]
fn rejection_matches_runtime_error_field() {
    let src = "let f = \\s . if c then @{a = 1} s else s in #a (f {})";
    let expr = parse_expr(src).unwrap();
    let err = Session::default().infer_expr(&expr).expect_err("rejected");
    assert!(err.to_diag().message.contains('a'));
    let summary = explore_paths(&expr, 100_000, 64);
    assert!(summary.field_errors > 0);
    // And the concrete error on the failing path names the same field.
    let failing = parse_expr("let f = \\s . if 0 then @{a = 1} s else s in #a (f {})").unwrap();
    match eval(&failing, 100_000) {
        Err(RuntimeError::MissingField(n)) => assert_eq!(n.as_str(), "a"),
        other => panic!("expected missing field, got {other:?}"),
    }
}
