//! # rowpoly — optimal inference of fields in row-polymorphic records
//!
//! A from-scratch Rust reproduction of Axel Simon, *Optimal Inference of
//! Fields in Row-Polymorphic Records* (PLDI 2014): a flow-sensitive type
//! inference that pairs unification-based Milner–Mycroft typing of
//! row-polymorphic records with a Boolean function over field-existence
//! flags, rejecting a program exactly when a record field is accessed on
//! a path where it was never added.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`lang`] — the surface calculus: lexer, parser, AST, pretty-printer;
//! * [`boolfun`] — Boolean functions (CNF), expansion, projection, and
//!   the 2-SAT / Horn-SAT / CDCL solvers;
//! * [`types`] — type terms, row unification, `*t+` flag sequences,
//!   `applyS`, schemes and environments;
//! * [`core`] — the inference engines: the flow inference (Fig. 3 +
//!   Section 5 extensions), the flow-free Fig. 2 configuration, the
//!   Rémy `Pre`/`Abs` baseline, and the SMT(unification) extension;
//! * [`batch`] — parallel multi-file checking on a work-stealing pool
//!   with a persistent content-addressed inference cache
//!   (see `docs/BATCH.md`);
//! * [`serve`] — the persistent incremental-query daemon behind
//!   `rowpoly serve`, with LSP and line-delimited JSON front ends
//!   (see `docs/SERVE.md`);
//! * [`eval`] — the concrete semantics (interpreter + path exploration);
//! * [`gen`] — decoder-spec workload generators for the evaluation;
//! * [`obs`] — zero-dependency tracing/metrics with Chrome-trace export
//!   (see `docs/OBSERVABILITY.md`).
//!
//! # Quickstart
//!
//! ```
//! use rowpoly::core::Session;
//!
//! let report = Session::default().infer_source(
//!     "def get s = #foo s
//!      def use = get (@{foo = 42} {})",
//! )?;
//! assert_eq!(report.defs[1].render(false), "Int");
//!
//! // Accessing a field that no path has added is a type error:
//! assert!(Session::default().infer_source("def bad = #foo {}").is_err());
//! # Ok::<(), rowpoly::core::SessionError>(())
//! ```

pub use rowpoly_batch as batch;
pub use rowpoly_boolfun as boolfun;
pub use rowpoly_core as core;
pub use rowpoly_eval as eval;
pub use rowpoly_gen as gen;
pub use rowpoly_lang as lang;
pub use rowpoly_obs as obs;
pub use rowpoly_serve as serve;
pub use rowpoly_types as types;
