//! Command-line front end: check, type and run record-calculus programs.
//!
//! ```text
//! rowpoly check <dir|files...> [options]   batch type-check programs
//!     --jobs N          worker threads; `0` or omitted auto-detects the
//!                       host's available parallelism
//!     --no-cache        disable the persistent inference cache
//!     --cache-dir D     cache location (default .rowpoly-cache)
//!     --sat-budget N    CDCL step budget per SAT check (timeout verdicts)
//!     --compaction M    stale-flag projection: aggressive (default) | perdef
//!     --no-fields       disable field tracking (Fig. 2 baseline)
//!     --explain         append the minimal-unsat-core proof summary to errors
//!     --progress        live progress line on stderr (TTY only; off with --json)
//!     --profile F       write the concurrency profile (per-worker
//!                       utilization, lock waits, critical path) to F as JSON;
//!                       F with a `.trace.json` twin gets the Chrome trace
//!     --json            machine-readable report (includes cache/steal stats
//!                       and per-error proof cores)
//! rowpoly profile <dir|files...> [options] check + print the profile report
//!     accepts the same options as check, plus:
//!     --trace F         write the per-worker Chrome trace to F
//!     --json            print the profile as JSON instead of text
//! rowpoly serve [--stdio|--json-rpc]       persistent incremental daemon
//!     --stdio           speak the Language Server Protocol on stdio (default)
//!     --json-rpc        newline-delimited JSON protocol (tests, scripting)
//!     --no-cache        do not read/write the persistent inference cache
//!     --cache-dir D     cache location (default .rowpoly-cache)
//!     --sat-budget N    CDCL step budget per SAT check
//!     --no-fields       disable field tracking
//!     --memo-max-bytes N  hot-memo byte bound (estimate; default 64 MiB)
//! rowpoly explain <file|->                 first type error with its checked
//!                                          minimal-core evidence (`-`: stdin)
//! rowpoly types <file> [--flags]           print every definition's scheme
//! rowpoly run   <file> [--fuel N]          type-check then evaluate `main`
//! rowpoly compare <file>                   flow vs Rémy vs flow-free verdicts
//! ```
//!
//! `check` accepts any mix of `.rp` files and directories (a directory
//! means its `*.rp` files, sorted); the exit code is non-zero iff any
//! definition fails. Its text report is deterministic — byte-identical
//! across `--jobs` settings and cache states.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rowpoly::batch::{check_sources, BatchOptions, FileInput};
use rowpoly::core::{hm, remy::RemyInfer, Compaction, Options, Session};
use rowpoly::eval::eval_program;
use rowpoly::lang::parse_program;

/// The counting allocator (off until `ROWPOLY_MEM=1` or a command
/// enables accounting; one relaxed load per allocation when off).
#[global_allocator]
static ALLOC: rowpoly::obs::CountingAlloc = rowpoly::obs::CountingAlloc;

/// The `--help` text. Kept in sync with the module doc above.
const HELP: &str = "\
rowpoly check <dir|files...> [options]   batch type-check programs
    --jobs N          worker threads; `0` or omitted auto-detects the
                      host's available parallelism
    --no-cache        disable the persistent inference cache
    --cache-dir D     cache location (default .rowpoly-cache)
    --sat-budget N    CDCL step budget per SAT check (timeout verdicts)
    --compaction M    stale-flag projection: aggressive (default) | perdef
    --no-fields       disable field tracking (Fig. 2 baseline)
    --explain         append the minimal-unsat-core proof summary to errors
    --progress        live progress line on stderr (TTY only; off with --json)
    --profile F       write the concurrency profile to F as JSON
                      (plus a `.trace.json` Chrome-trace twin)
    --json            machine-readable report
rowpoly profile <dir|files...> [options] check + print the profile report
    accepts the same options as check, plus:
    --trace F         write the per-worker Chrome trace to F
    --json            print the profile as JSON instead of text
rowpoly serve [--stdio|--json-rpc]       persistent incremental daemon
    --stdio           Language Server Protocol on stdio (default)
    --json-rpc        newline-delimited JSON protocol (tests, scripting)
    --no-cache        do not read/write the persistent inference cache
    --cache-dir D     cache location (default .rowpoly-cache)
    --sat-budget N    CDCL step budget per SAT check
    --no-fields       disable field tracking
    --memo-max-bytes N  hot-memo byte bound (estimate; default 64 MiB)
rowpoly explain <file|->                 first type error with its checked
                                         minimal-core evidence (`-`: stdin)
rowpoly types <file> [--flags]           print every definition's scheme
rowpoly run   <file> [--fuel N]          type-check then evaluate `main`
rowpoly compare <file>                   flow vs Remy vs flow-free verdicts
";

fn main() -> ExitCode {
    rowpoly::obs::mem::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: rowpoly <check|explain|types|run|compare> <paths...> [options]");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "profile" => cmd_profile(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "explain" | "types" | "run" | "compare" => cmd_single_file(cmd, &args[1..]),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "unknown command `{other}`; use check, profile, serve, explain, types, run or compare"
            );
            ExitCode::from(2)
        }
    }
}

/// Parses `--opt value` from an argument list.
fn opt_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Expands a path argument: a directory contributes its `*.rp` files in
/// sorted order, anything else is taken as a file.
fn expand(path: &str, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let p = Path::new(path);
    if p.is_dir() {
        let mut found = Vec::new();
        let entries =
            std::fs::read_dir(p).map_err(|e| format!("cannot read directory {path}: {e}"))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read directory {path}: {e}"))?;
            let file = entry.path();
            if file.extension().is_some_and(|ext| ext == "rp") {
                found.push(file);
            }
        }
        found.sort();
        out.extend(found);
        Ok(())
    } else {
        out.push(p.to_path_buf());
        Ok(())
    }
}

/// Everything the batch commands (`check`, `profile`) parse from their
/// argument lists.
struct BatchArgs {
    inputs: Vec<FileInput>,
    options: BatchOptions,
    json: bool,
    /// `--profile F`: write the profile JSON here.
    profile_out: Option<PathBuf>,
    /// `--trace F`: write the per-worker Chrome trace here.
    trace_out: Option<PathBuf>,
}

/// Parses the shared batch argument surface; `usage` names the calling
/// subcommand for diagnostics.
fn parse_batch_args(args: &[String], usage: &str) -> Result<BatchArgs, ExitCode> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    let value_opts = [
        "--jobs",
        "--cache-dir",
        "--sat-budget",
        "--compaction",
        "--profile",
        "--trace",
    ];
    while i < args.len() {
        let a = &args[i];
        if value_opts.contains(&a.as_str()) {
            i += 2;
            continue;
        }
        if a.starts_with("--") {
            i += 1;
            continue;
        }
        if let Err(e) = expand(a, &mut paths) {
            eprintln!("error: {e}");
            return Err(ExitCode::from(2));
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!("usage: {usage}");
        return Err(ExitCode::from(2));
    }

    let jobs: usize = match opt_value(args, "--jobs") {
        None => 0,
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("error: --jobs expects a number, got `{v}`");
                return Err(ExitCode::from(2));
            }
        },
    };
    let sat_budget: Option<u64> = match opt_value(args, "--sat-budget") {
        None => None,
        Some(v) => match v.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("error: --sat-budget expects a number, got `{v}`");
                return Err(ExitCode::from(2));
            }
        },
    };
    let compaction = match opt_value(args, "--compaction") {
        None | Some("aggressive") => Compaction::Aggressive,
        Some("perdef") => Compaction::PerDef,
        Some(other) => {
            eprintln!("error: --compaction expects `aggressive` or `perdef`, got `{other}`");
            return Err(ExitCode::from(2));
        }
    };

    let json = args.iter().any(|a| a == "--json");
    let profile_out = opt_value(args, "--profile").map(PathBuf::from);
    let options = BatchOptions {
        opts: Options {
            track_fields: !args.iter().any(|a| a == "--no-fields"),
            sat_budget,
            compaction,
            ..Options::default()
        },
        jobs,
        use_cache: !args.iter().any(|a| a == "--no-cache"),
        cache_dir: opt_value(args, "--cache-dir")
            .map(PathBuf::from)
            .unwrap_or_else(rowpoly::batch::cache::default_dir),
        explain: args.iter().any(|a| a == "--explain"),
        progress: args.iter().any(|a| a == "--progress") && !json,
        profile: profile_out.is_some(),
    };

    let mut inputs = Vec::with_capacity(paths.len());
    for path in paths {
        let display = path.display().to_string();
        match std::fs::read_to_string(&path) {
            Ok(source) => inputs.push(FileInput {
                path: display,
                source,
            }),
            Err(e) => {
                eprintln!("error: cannot read {display}: {e}");
                return Err(ExitCode::from(2));
            }
        }
    }
    Ok(BatchArgs {
        inputs,
        options,
        json,
        profile_out,
        trace_out: opt_value(args, "--trace").map(PathBuf::from),
    })
}

/// The Chrome-trace twin of a profile JSON path: `out.json` →
/// `out.trace.json`, anything else gets `.trace.json` appended.
fn trace_twin(profile: &Path) -> PathBuf {
    let s = profile.display().to_string();
    match s.strip_suffix(".json") {
        Some(stem) => PathBuf::from(format!("{stem}.trace.json")),
        None => PathBuf::from(format!("{s}.trace.json")),
    }
}

/// Writes the profile JSON to `out` and the Chrome trace to its
/// `.trace.json` twin.
fn write_profile(
    out: &Path,
    profile: &rowpoly::batch::profile::ProfileReport,
) -> Result<(), String> {
    std::fs::write(out, profile.to_json().render() + "\n")
        .map_err(|e| format!("cannot write profile {}: {e}", out.display()))?;
    let trace = trace_twin(out);
    profile
        .write_trace(&trace)
        .map_err(|e| format!("cannot write trace {}: {e}", trace.display()))?;
    eprintln!(
        "profile written to {} (trace: {})",
        out.display(),
        trace.display()
    );
    Ok(())
}

fn cmd_check(args: &[String]) -> ExitCode {
    let parsed = match parse_batch_args(
        args,
        "rowpoly check <dir|files...> [--jobs N] [--no-cache] [--profile F] [--json]",
    ) {
        Ok(p) => p,
        Err(code) => return code,
    };

    let report = check_sources(parsed.inputs, &parsed.options);
    if parsed.json {
        println!("{}", report.to_json().render());
    } else {
        print!("{}", report.render());
    }
    if let (Some(out), Some(profile)) = (&parsed.profile_out, &report.profile) {
        // The summary goes to stderr so the deterministic report on
        // stdout stays byte-identical with and without --profile.
        eprint!("{}", profile.render_text());
        if let Err(e) = write_profile(out, profile) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `rowpoly profile`: run the batch with profiling on and report the
/// concurrency profile itself (text or `--json`), with an optional
/// Chrome trace. The type-checking verdict still decides the exit
/// code, so `profile` can replace `check` in scripts.
fn cmd_profile(args: &[String]) -> ExitCode {
    let mut parsed = match parse_batch_args(
        args,
        "rowpoly profile <dir|files...> [--jobs N] [--trace F] [--json]",
    ) {
        Ok(p) => p,
        Err(code) => return code,
    };
    parsed.options.profile = true;

    let report = check_sources(parsed.inputs, &parsed.options);
    let profile = report
        .profile
        .as_ref()
        .expect("profiling was requested for this run");
    if parsed.json {
        println!("{}", profile.to_json().render());
    } else {
        print!("{}", profile.render_text());
    }
    if let Some(out) = &parsed.profile_out {
        if let Err(e) = write_profile(out, profile) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(trace) = &parsed.trace_out {
        if let Err(e) = profile.write_trace(trace) {
            eprintln!("error: cannot write trace {}: {e}", trace.display());
            return ExitCode::from(2);
        }
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `rowpoly serve`: run the incremental daemon until the client closes
/// the session. `--stdio` (the default) speaks LSP; `--json-rpc`
/// speaks the newline-delimited protocol.
fn cmd_serve(args: &[String]) -> ExitCode {
    let json_rpc = args.iter().any(|a| a == "--json-rpc");
    if json_rpc && args.iter().any(|a| a == "--stdio") {
        eprintln!("error: --stdio and --json-rpc are mutually exclusive");
        return ExitCode::from(2);
    }
    let sat_budget: Option<u64> = match opt_value(args, "--sat-budget") {
        None => None,
        Some(v) => match v.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("error: --sat-budget expects a number, got `{v}`");
                return ExitCode::from(2);
            }
        },
    };
    let memo_max_bytes: Option<u64> = match opt_value(args, "--memo-max-bytes") {
        None => rowpoly::serve::ServeConfig::default().memo_max_bytes,
        Some(v) => match v.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("error: --memo-max-bytes expects a number, got `{v}`");
                return ExitCode::from(2);
            }
        },
    };
    let config = rowpoly::serve::ServeConfig {
        opts: Options {
            track_fields: !args.iter().any(|a| a == "--no-fields"),
            sat_budget,
            ..Options::default()
        },
        cache_dir: (!args.iter().any(|a| a == "--no-cache")).then(|| {
            opt_value(args, "--cache-dir")
                .map(PathBuf::from)
                .unwrap_or_else(rowpoly::batch::cache::default_dir)
        }),
        memo_max_bytes,
        ..rowpoly::serve::ServeConfig::default()
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let result = if json_rpc {
        rowpoly::serve::rpc::serve(stdin.lock(), stdout.lock(), config)
    } else {
        rowpoly::serve::lsp::serve(stdin.lock(), stdout.lock(), config)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve session failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Reads a single-file command's input: a path, or `-` for stdin.
fn read_input(file: &str) -> std::io::Result<String> {
    if file == "-" {
        let mut buf = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(file)
    }
}

fn cmd_single_file(cmd: &str, args: &[String]) -> ExitCode {
    let Some(file) = args.first() else {
        eprintln!("usage: rowpoly {cmd} <file|-> [options]");
        return ExitCode::from(2);
    };
    let source = match read_input(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let show_flags = args.iter().any(|a| a == "--flags");
    let no_fields = args.iter().any(|a| a == "--no-fields");
    let fuel: u64 = opt_value(args, "--fuel")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000_000);

    let session = Session::new(Options {
        track_fields: !no_fields,
        // `explain` trades speed for diagnostics: checking after every
        // field-requirement assertion catches the conflict before
        // stale-flag projection can collapse the offending clauses, so
        // the minimal core still maps to source spans.
        check: if cmd == "explain" {
            rowpoly::core::CheckPolicy::Eager
        } else {
            Options::default().check
        },
        ..Options::default()
    });

    match cmd {
        "explain" => match session.infer_source(&source) {
            Ok(report) => {
                println!(
                    "no type errors: {} definition{} check",
                    report.defs.len(),
                    if report.defs.len() == 1 { "" } else { "s" }
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprint!("{}", e.render_explained(&source));
                ExitCode::FAILURE
            }
        },
        "types" => match session.infer_source(&source) {
            Ok(report) => {
                for d in &report.defs {
                    if show_flags {
                        println!("{} : {}", d.name, d.render_with_flow());
                    } else {
                        println!("{} : {}", d.name, d.render(false));
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprint!("{}", e.render(&source));
                ExitCode::FAILURE
            }
        },
        "run" => {
            let program = match parse_program(&source) {
                Ok(p) => p,
                Err(d) => {
                    eprint!("{}", d.render(&source));
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = session.infer_program(&program) {
                eprint!("{}", e.to_diag().render(&source));
                return ExitCode::FAILURE;
            }
            match eval_program(&program, fuel) {
                Ok(v) => {
                    println!("{v}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "compare" => {
            let verdict = |ok: bool| if ok { "accepts" } else { "rejects" };
            println!(
                "flow (this paper)          {}",
                verdict(session.infer_source(&source).is_ok())
            );
            println!(
                "Remy Pre/Abs baseline      {}",
                verdict(RemyInfer::new().infer_source(&source).is_ok())
            );
            println!(
                "Fig. 2 (no field tracking) {}",
                verdict(hm::infer_source(&source).is_ok())
            );
            ExitCode::SUCCESS
        }
        _ => unreachable!("dispatched in main"),
    }
}
