//! Command-line front end: check, type and run record-calculus programs.
//!
//! ```text
//! rowpoly check <file> [--no-fields] [--flags]   type-check a program
//! rowpoly types <file> [--flags]                 print every definition's scheme
//! rowpoly run   <file> [--fuel N]                type-check then evaluate `main`
//! rowpoly compare <file>                         flow vs Rémy vs flow-free verdicts
//! ```

use std::process::ExitCode;

use rowpoly::core::{hm, remy::RemyInfer, Options, Session};
use rowpoly::eval::eval_program;
use rowpoly::lang::parse_program;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, file) = match (args.first(), args.get(1)) {
        (Some(c), Some(f)) => (c.as_str(), f.as_str()),
        _ => {
            eprintln!("usage: rowpoly <check|types|run|compare> <file> [options]");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let show_flags = args.iter().any(|a| a == "--flags");
    let no_fields = args.iter().any(|a| a == "--no-fields");
    let fuel: u64 = args
        .iter()
        .position(|a| a == "--fuel")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000_000);

    let session = Session::new(Options {
        track_fields: !no_fields,
        ..Options::default()
    });

    match cmd {
        "check" => match session.infer_source(&source) {
            Ok(report) => {
                println!(
                    "ok: {} definitions, SAT class {:?}",
                    report.defs.len(),
                    report.sat_class
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprint!("{}", e.render(&source));
                ExitCode::FAILURE
            }
        },
        "types" => match session.infer_source(&source) {
            Ok(report) => {
                for d in &report.defs {
                    if show_flags {
                        println!("{} : {}", d.name, d.render_with_flow());
                    } else {
                        println!("{} : {}", d.name, d.render(false));
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprint!("{}", e.render(&source));
                ExitCode::FAILURE
            }
        },
        "run" => {
            let program = match parse_program(&source) {
                Ok(p) => p,
                Err(d) => {
                    eprint!("{}", d.render(&source));
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = session.infer_program(&program) {
                eprint!("{}", e.to_diag().render(&source));
                return ExitCode::FAILURE;
            }
            match eval_program(&program, fuel) {
                Ok(v) => {
                    println!("{v}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "compare" => {
            let verdict = |ok: bool| if ok { "accepts" } else { "rejects" };
            println!(
                "flow (this paper)          {}",
                verdict(session.infer_source(&source).is_ok())
            );
            println!(
                "Remy Pre/Abs baseline      {}",
                verdict(RemyInfer::new().infer_source(&source).is_ok())
            );
            println!(
                "Fig. 2 (no field tracking) {}",
                verdict(hm::infer_source(&source).is_ok())
            );
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`; use check, types, run or compare");
            ExitCode::from(2)
        }
    }
}
