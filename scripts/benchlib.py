"""Shared helpers for the bench-gate scripts.

Every `check_*.py` gate follows the same pattern: load a JSON report
(from a path or stdin), assert schema facts about it, and exit non-zero
with a `<tool>: FAIL: <reason>` diagnostic on the first violation so CI
and `scripts/verify.sh` can gate on it. This module holds the shared
plumbing; the gates keep only their domain-specific assertions.

Usage:

    import benchlib
    fail = benchlib.failer("check_batch")
    doc = benchlib.load_json(path, fail)
    run = benchlib.require_obj(doc, "serial", "report", fail)
    benchlib.positive_number(run, "wall_s", "serial", fail)
"""

import json
import sys


def failer(tool):
    """A `fail(msg)` that prints `<tool>: FAIL: <msg>` and exits 1."""

    def fail(msg):
        print(f"{tool}: FAIL: {msg}", file=sys.stderr)
        sys.exit(1)

    return fail


def load_json(path, fail):
    """Parses JSON from `path`, or stdin when `path` is `-`."""
    try:
        if path == "-":
            return json.load(sys.stdin)
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def require_obj(doc, key, what, fail):
    """`doc[key]` as a dict, or a schema failure."""
    v = doc.get(key)
    if not isinstance(v, dict):
        fail(f"{what}: {key} must be an object, got {v!r}")
    return v


def require_list(doc, key, what, fail, nonempty=True):
    """`doc[key]` as a list, or a schema failure."""
    v = doc.get(key)
    if not isinstance(v, list) or (nonempty and not v):
        fail(f"{what}: {key} must be a non-empty array, got {v!r}")
    return v


def positive_number(doc, key, what, fail):
    """`doc[key]` as a number > 0, or a schema failure. Booleans are
    numbers to `isinstance`; they are rejected explicitly."""
    v = doc.get(key)
    if not isinstance(v, (int, float)) or isinstance(v, bool) or v <= 0:
        fail(f"{what}: {key} must be a positive number, got {v!r}")
    return v


def nonneg_int(doc, key, what, fail):
    """`doc[key]` as an integer >= 0, or a schema failure."""
    v = doc.get(key)
    if not isinstance(v, int) or isinstance(v, bool) or v < 0:
        fail(f"{what}: {key} must be a non-negative integer, got {v!r}")
    return v
