#!/usr/bin/env python3
"""Schema-and-scaling gate for the batch benchmark JSON.

Usage: check_batch.py <BENCH_batch.json> [--quick]

Validates the report the `batch` bench emits (`--json`): the four run
configurations and the 1/2/4/8-worker profiled sweep are present and
well-formed, parallelism never *costs* wall time, and — when the host
actually has the cores to show it (`host_cpus >= 4`) — the 4-worker
run beats serial by at least 2x. Hosts with fewer cores cannot exhibit
wall-clock speedup no matter how well the pipeline scales, so on those
the gate degrades to "parallel dispatch is free": the sweep must stay
flat within noise tolerance and the speedup must stay near 1.0. The
`host_cpus` field recorded by the bench makes the applied mode
auditable from the report alone. `--quick` additionally skips the
speedup floors (scaled-down corpora are too small and noisy to gate),
keeping only schema and sanity checks. Exits non-zero with a
diagnostic on the first violation, so CI can gate on it.
"""

import sys

import benchlib

# Required 4-worker speedup over serial when the host has >= 4 CPUs.
SPEEDUP_FLOOR = 4.0 / 2.0
# On any host, parallel dispatch must not cost more than ~15% wall.
NO_COST_FLOOR = 0.85
# Sweep points may exceed the 1-worker wall by at most this factor
# (scheduler noise); anything above means per-job work is inflating
# with worker count again. Quick-mode walls are ~0.1s, where
# scheduler noise alone routinely costs 20%, so the quick gate keeps
# only a coarse bound — the regression this catches showed > 2x.
WALL_TOLERANCE = 1.15
WALL_TOLERANCE_QUICK = 1.5
SWEEP_WORKERS = [1, 2, 4, 8]

fail = benchlib.failer("check_batch")


def positive_number(doc, key, what):
    return benchlib.positive_number(doc, key, what, fail)


def check_run(doc, name):
    run = doc.get(name)
    if not isinstance(run, dict):
        fail(f"{name} must be an object, got {run!r}")
    positive_number(run, "wall_s", name)
    positive_number(run, "workers", name)
    for key in ("steals", "cache_hits", "cache_misses"):
        v = run.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"{name}: {key} must be a non-negative integer, got {v!r}")
    return run


def check_scale_point(point, expected_workers):
    what = f"scaling[workers={expected_workers}]"
    if not isinstance(point, dict):
        fail(f"{what} must be an object, got {point!r}")
    if point.get("workers") != expected_workers:
        fail(f"{what}: workers is {point.get('workers')!r}")
    wall = positive_number(point, "wall_s", what)
    for key in ("busy_pct", "idle_pct", "lock_wait_pct"):
        v = point.get(key)
        if not isinstance(v, (int, float)) or not 0.0 <= v <= 100.0:
            fail(f"{what}: {key} must be a percentage, got {v!r}")
    ratio = point.get("critical_path_ratio")
    if not isinstance(ratio, (int, float)) or not 0.0 <= ratio <= 1.0:
        fail(f"{what}: critical_path_ratio must be in [0, 1], got {ratio!r}")
    per_worker = point.get("per_worker")
    if not isinstance(per_worker, list) or len(per_worker) != expected_workers:
        n = len(per_worker) if isinstance(per_worker, list) else per_worker
        fail(f"{what}: per_worker must list all {expected_workers} workers, got {n!r}")
    jobs = 0
    for u in per_worker:
        if not isinstance(u.get("jobs"), int) or u["jobs"] < 0:
            fail(f"{what}: per-worker jobs must be a non-negative integer: {u}")
        jobs += u["jobs"]
    return wall, jobs


def main():
    quick = "--quick" in sys.argv[1:]
    args = [a for a in sys.argv[1:] if a != "--quick"]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    doc = benchlib.load_json(args[0], fail)

    if doc.get("bench") != "batch":
        fail(f"bench must be 'batch', got {doc.get('bench')!r}")
    host_cpus = doc.get("host_cpus")
    if not isinstance(host_cpus, int) or host_cpus < 1:
        fail(f"host_cpus must be a positive integer, got {host_cpus!r}")
    defs = doc.get("defs")
    if not isinstance(defs, int) or defs <= 0:
        fail(f"defs must be a positive integer, got {defs!r}")

    serial = check_run(doc, "serial")
    parallel = check_run(doc, "parallel")
    cold = check_run(doc, "cold_cache")
    warm = check_run(doc, "warm_cache")
    if serial["workers"] != 1:
        fail(f"serial run used {serial['workers']} workers")
    if warm["cache_hits"] == 0:
        fail("warm run never hit the cache")
    if cold["cache_hits"] + cold["cache_misses"] == 0:
        fail("cold run never touched the cache")

    speedup = positive_number(doc, "parallel_speedup", "report")
    claimed = serial["wall_s"] / max(parallel["wall_s"], 1e-9)
    if abs(claimed - speedup) > 0.01 * max(claimed, speedup):
        fail(f"parallel_speedup {speedup:.3f} != serial/parallel {claimed:.3f}")
    positive_number(doc, "warm_over_cold", "report")

    scaling = doc.get("scaling")
    if not isinstance(scaling, list) or len(scaling) != len(SWEEP_WORKERS):
        fail(f"scaling must sweep workers {SWEEP_WORKERS}, got {scaling!r}")
    walls = []
    for point, workers in zip(scaling, SWEEP_WORKERS):
        wall, jobs = check_scale_point(point, workers)
        walls.append(wall)
        if jobs == 0:
            fail(f"scaling[workers={workers}]: no jobs ran")

    # Scaling gates. Every mode requires the sweep to be non-degrading:
    # more workers must never cost more wall time than the 1-worker
    # baseline (beyond noise). That is the regression this gate exists
    # to catch — per-job work inflating with worker count.
    tolerance = WALL_TOLERANCE_QUICK if quick else WALL_TOLERANCE
    for wall, workers in zip(walls[1:], SWEEP_WORKERS[1:]):
        if wall > walls[0] * tolerance:
            fail(
                f"sweep degrades: {workers} workers took {wall:.3f}s vs "
                f"{walls[0]:.3f}s on 1 worker (> {tolerance}x tolerance)"
            )
    if quick:
        mode = "quick (schema + non-degrading sweep only)"
    elif host_cpus >= 4:
        if speedup < SPEEDUP_FLOOR:
            fail(
                f"parallel_speedup {speedup:.2f}x on a {host_cpus}-CPU host "
                f"is below the {SPEEDUP_FLOOR}x floor"
            )
        sweep4 = walls[0] / max(walls[SWEEP_WORKERS.index(4)], 1e-9)
        if sweep4 < SPEEDUP_FLOOR:
            fail(
                f"profiled sweep shows only {sweep4:.2f}x at 4 workers "
                f"on a {host_cpus}-CPU host (< {SPEEDUP_FLOOR}x floor)"
            )
        mode = f">= {SPEEDUP_FLOOR}x at 4 workers gated ({host_cpus} CPUs)"
    else:
        if speedup < NO_COST_FLOOR:
            fail(
                f"parallel_speedup {speedup:.2f}x: parallel dispatch costs "
                f"more than {(1 - NO_COST_FLOOR) * 100:.0f}% wall even on a "
                f"{host_cpus}-CPU host"
            )
        mode = (
            f"non-degrading gated only: {host_cpus} CPU(s) cannot show "
            f"wall-clock speedup"
        )

    print(
        f"check_batch: OK: {defs} defs, parallel_speedup {speedup:.2f}x, "
        f"sweep walls {', '.join(f'{w:.2f}s' for w in walls)} [{mode}]"
    )


if __name__ == "__main__":
    main()
