#!/usr/bin/env bash
# Full local verification: what CI runs, in the order CI runs it.
# Zero network required — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> fig9 smoke (--quick --phases --json)"
out=$(cargo run --release -p rowpoly-bench --bin fig9 -- --quick --phases --json)
case "$out" in
  '{'*'}') echo "    JSON output OK (${#out} bytes)" ;;
  *) echo "    fig9 --json did not emit a JSON object" >&2; exit 1 ;;
esac

echo "==> all checks passed"
