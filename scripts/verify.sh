#!/usr/bin/env bash
# Full local verification: what CI runs, in the order CI runs it.
# Zero network required — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test (checked proofs: every SAT verdict replayed)"
ROWPOLY_CHECK_PROOFS=1 cargo test --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> fig9 smoke (--quick --phases --json)"
out=$(cargo run --release -p rowpoly-bench --bin fig9 -- --quick --phases --json)
case "$out" in
  '{'*'}') echo "    JSON output OK (${#out} bytes)" ;;
  *) echo "    fig9 --json did not emit a JSON object" >&2; exit 1 ;;
esac

echo "==> projection regression smoke (phase budget + fast-path accounting)"
# Three quick runs; the gate takes the cleanest one (noise only ever
# inflates the project share).
proj_dir=$(mktemp -d)
printf '%s' "$out" > "$proj_dir/fig9-1.json"
for i in 2 3; do
  cargo run --release -p rowpoly-bench --bin fig9 -- --quick --json > "$proj_dir/fig9-$i.json"
done
python3 scripts/check_projection.py "$proj_dir"/fig9-*.json
rm -rf "$proj_dir"

echo "==> incremental SAT gate (committed BENCH_project.json + quick edit replay)"
# The committed report must show the incremental session re-checking a
# single-clause edit >= 1.5x faster than a fresh solve, with identical
# per-edit verdicts and classes; the live quick run re-proves parity
# (and every session verdict is replayed through the proof checker).
python3 scripts/check_projection.py BENCH_project.json
incr_dir=$(mktemp -d)
ROWPOLY_CHECK_PROOFS=1 cargo run --release -p rowpoly-bench --bin project -- --quick --json \
  > "$incr_dir/project.json"
python3 scripts/check_projection.py "$incr_dir/project.json"
rm -rf "$incr_dir"

echo "==> batch smoke (parallel check + warm cache)"
# programs/bad_select.rp is deliberately ill-typed, so `check programs/`
# exits 1 by design — assert on the JSON report, not the exit code.
batch_cache=$(mktemp -d)
trap 'rm -rf "$batch_cache"' EXIT
run1=$(cargo run --release --bin rowpoly -- check programs/ --jobs 2 --cache-dir "$batch_cache" --json) || true
run2=$(cargo run --release --bin rowpoly -- check programs/ --jobs 2 --cache-dir "$batch_cache" --json) || true
RUN1="$run1" RUN2="$run2" python3 - <<'PY'
import json, os
one = json.loads(os.environ['RUN1'])
two = json.loads(os.environ['RUN2'])
assert one['stats']['defs'] > 0, one
assert one['stats']['errors'] == 1, one          # bad_select.rp only
assert two['stats']['cache_hits'] > 0, two
print(f"    {one['stats']['defs']} defs, warm run hit {two['stats']['cache_hits']} cached groups")
PY

echo "==> profile smoke (concurrency profile + worker-track trace)"
profile_dir=$(mktemp -d)
cargo run --release --bin rowpoly -- check programs/ --jobs 2 --no-cache \
  --profile "$profile_dir/profile.json" > /dev/null 2> /dev/null || true
python3 scripts/check_profile.py "$profile_dir/profile.json" "$profile_dir/profile.trace.json"
cargo run --release --bin rowpoly -- profile programs/ --jobs 2 --no-cache --json \
  > "$profile_dir/profile-cmd.json" || true
python3 scripts/check_profile.py "$profile_dir/profile-cmd.json"
rm -rf "$profile_dir"

echo "==> batch scaling gate (committed BENCH_batch.json + quick live sweep)"
# The committed report must clear the CPU-aware scaling floor (>= 2x at
# 4 workers when the host has the cores; non-degrading otherwise); the
# live smoke re-runs a quick sweep and gates schema + sweep shape.
python3 scripts/check_batch.py BENCH_batch.json
batch_bench=$(mktemp -d)
cargo run --release -p rowpoly-bench --bin batch -- --quick --json > "$batch_bench/batch.json"
python3 scripts/check_batch.py "$batch_bench/batch.json" --quick
rm -rf "$batch_bench"

echo "==> memory accounting gate (committed BENCH reports + live smoke)"
# The committed reports must carry well-formed counting-allocator
# blocks and clear the budgets: fig9 accounting overhead < 5% wall,
# batch bytes/def + peak-RSS ceilings, serve memo within its byte
# bound. The live smoke checks the rowpoly CLI surface end to end.
python3 scripts/check_mem.py BENCH_fig9.json BENCH_batch.json BENCH_serve.json
mem_out=$(ROWPOLY_MEM=1 cargo run --release --bin rowpoly -- check programs/ --jobs 2 --no-cache --json) || true
MEM_OUT="$mem_out" python3 - <<'PY'
import json, os
doc = json.loads(os.environ['MEM_OUT'])
mem = doc['mem']
assert mem['enabled'] is True, mem
assert mem['alloc_bytes'] > 0, mem
assert mem['peak_bytes'] >= mem['live_bytes'], mem
assert 'lang.interner' in mem['sites'], sorted(mem['sites'])
print(f"    live mem block OK: {mem['alloc_bytes']} bytes allocated, "
      f"sites {sorted(mem['sites'])}")
PY

echo "==> serve smoke (20-edit trace replay, checked proofs) + BENCH_serve gate"
# The committed full-scale report must clear the >= 10x p99 floor; the
# live smoke replays a quick 20-edit trace with every SAT verdict
# replayed through the proof checker, gating schema + cutoff shape.
python3 scripts/check_serve.py BENCH_serve.json
serve_dir=$(mktemp -d)
ROWPOLY_CHECK_PROOFS=1 cargo run --release -p rowpoly-bench --bin edits -- --quick --edits 20 --json \
  > "$serve_dir/serve.json"
python3 scripts/check_serve.py "$serve_dir/serve.json" --quick
rm -rf "$serve_dir"

echo "==> all checks passed"
