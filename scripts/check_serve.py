#!/usr/bin/env python3
"""Schema-and-shape check for the serve edit-trace benchmark JSON.

Usage: check_serve.py <BENCH_serve.json> [--quick]

Validates the report the `edits` bench emits (`--json`): the per-edit
latency percentiles are present and ordered, the cutoff counters prove
early cutoff (about one definition group recomputed per edit, the rest
served from memo), and — at full scale — every workload's warm p99
beats the one-shot baseline by at least 10x. `--quick` relaxes the
speedup floor: the scaled-down corpora are too small for per-revision
fixed costs to amortise, so CI's quick smoke only gates the schema and
the cutoff shape. Exits non-zero with a diagnostic on the first
violation, so CI can gate on it.
"""

import sys

import benchlib

SPEEDUP_FLOOR = 10.0
# An edit recomputes the edited group and, only when the closed scheme
# changed, its dependents. The literal-edit traces are built so schemes
# never change, so anything above ~2 groups per edit means cutoff broke.
MAX_RECOMPUTED_PER_EDIT = 2.0

fail = benchlib.failer("check_serve")


def check_workload(w, edits, quick):
    name = w.get("name")
    if not isinstance(name, str) or not name:
        fail(f"workload missing name: {w}")
    for key in ("lines", "defs", "open_ns", "edits", "one_shot_ns"):
        if not isinstance(w.get(key), int) or w[key] <= 0:
            fail(f"{name}: {key} must be a positive integer, got {w.get(key)!r}")
    if w["edits"] != edits:
        fail(f"{name}: ran {w['edits']} edits, report claims {edits} per workload")

    per_edit = w.get("per_edit_ns")
    if not isinstance(per_edit, dict):
        fail(f"{name}: per_edit_ns must be an object")
    for key in ("p50", "p90", "p99", "max"):
        if not isinstance(per_edit.get(key), int) or per_edit[key] <= 0:
            fail(f"{name}: per_edit_ns.{key} must be a positive integer")
    if not per_edit["p50"] <= per_edit["p90"] <= per_edit["p99"] <= per_edit["max"]:
        fail(f"{name}: per-edit percentiles are not monotone: {per_edit}")

    cutoff = w.get("cutoff")
    if not isinstance(cutoff, dict):
        fail(f"{name}: cutoff must be an object")
    for key in ("slices", "verdict_hits", "verdict_recomputed", "defs_recomputed"):
        if not isinstance(cutoff.get(key), int) or cutoff[key] < 0:
            fail(f"{name}: cutoff.{key} must be a non-negative integer")
    if cutoff["verdict_hits"] + cutoff["verdict_recomputed"] > cutoff["slices"]:
        fail(f"{name}: hits + recomputed exceed evaluated slices: {cutoff}")
    per_edit_recomputed = cutoff["verdict_recomputed"] / edits
    if per_edit_recomputed > MAX_RECOMPUTED_PER_EDIT:
        fail(
            f"{name}: early cutoff broke — {per_edit_recomputed:.1f} groups "
            f"recomputed per edit (expected ~1): {cutoff}"
        )
    if cutoff["verdict_hits"] == 0 and w["defs"] > 1:
        fail(f"{name}: no verdict hits over the whole trace: {cutoff}")

    speedup = w.get("speedup_p99")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        fail(f"{name}: speedup_p99 must be a positive number, got {speedup!r}")
    claimed = w["one_shot_ns"] / per_edit["p99"]
    if abs(claimed - speedup) > 0.01 * max(claimed, speedup):
        fail(f"{name}: speedup_p99 {speedup:.2f} != one_shot/p99 {claimed:.2f}")
    if not quick and speedup < SPEEDUP_FLOOR:
        fail(f"{name}: warm p99 beats one-shot by only {speedup:.1f}x (< {SPEEDUP_FLOOR}x)")
    return speedup


def main():
    args = [a for a in sys.argv[1:] if a != "--quick"]
    quick = "--quick" in sys.argv[1:]
    if len(args) != 1:
        fail("usage: check_serve.py <BENCH_serve.json> [--quick]")
    doc = benchlib.load_json(args[0], fail)

    if doc.get("bench") != "serve-edits":
        fail(f"bench must be 'serve-edits', got {doc.get('bench')!r}")
    edits = doc.get("edits_per_workload")
    if not isinstance(edits, int) or edits <= 0:
        fail(f"edits_per_workload must be a positive integer, got {edits!r}")
    if quick and doc.get("quick") is not True:
        fail("--quick given but the report was not generated with --quick")

    workloads = doc.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        fail("workloads must be a non-empty array")
    speedups = [check_workload(w, edits, quick) for w in workloads]

    min_speedup = doc.get("min_speedup_p99")
    if not isinstance(min_speedup, (int, float)):
        fail(f"min_speedup_p99 must be a number, got {min_speedup!r}")
    if abs(min_speedup - min(speedups)) > 0.01 * max(min_speedup, min(speedups)):
        fail(f"min_speedup_p99 {min_speedup:.2f} != min over workloads {min(speedups):.2f}")
    if not quick and min_speedup < SPEEDUP_FLOOR:
        fail(f"min_speedup_p99 {min_speedup:.1f}x is below the {SPEEDUP_FLOOR}x floor")

    mode = "quick (schema + cutoff only)" if quick else f">= {SPEEDUP_FLOOR}x gated"
    print(
        f"check_serve: OK: {len(workloads)} workloads, {edits} edits each, "
        f"min speedup_p99 {min_speedup:.1f}x [{mode}]"
    )


if __name__ == "__main__":
    main()
