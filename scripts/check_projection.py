#!/usr/bin/env python3
"""Projection-regression smoke over fig9 --json reports.

Guards the indexed projection engine (DESIGN.md #9) against
regressions:

* the `project` phase must stay a bounded share of with-fields wall
  time, aggregated across workloads (per-workload quick-mode walls are
  ~20 ms and too noisy to gate individually). Before the indexed
  engine the share was ~0.52; it now measures ~0.33-0.39. The gate
  takes the *minimum* ratio across the given reports — noise only ever
  inflates the share, so the cleanest run is the honest one — and
  fails above 0.45: comfortably over the clean measurement, reliably
  under the old profile.
* every fig9 workload is select/update-only (2-SAT class), so every
  elimination must take the binary-implication fast path, and the
  fast-path/fallback split must account for every elimination.

It also gates the `project` bench report (`BENCH_project.json`, or a
live `project --json` run): the report must carry the
incremental-vs-fresh `incremental` section, its per-edit verdict/class
streams must have matched, and the incremental session must re-check a
single-clause edit at least `INCREMENTAL_SPEEDUP_FLOOR` times faster
than a from-scratch solve (quick runs gate at no-slower-than-fresh
instead — their per-edit walls are microseconds and noisy).

Documents are told apart by their `bench` field, so one invocation can
mix fig9 and project reports.

Usage: check_projection.py <json-file>... (or - for stdin)
"""

import sys

import benchlib

PROJECT_WALL_BUDGET = 0.45
INCREMENTAL_SPEEDUP_FLOOR = 1.5

fail = benchlib.failer("check_projection")


def ratio_of(doc):
    total_wall = 0.0
    total_project = 0.0
    for w in doc["workloads"]:
        wf = w["with_fields"]
        name = w["name"]
        fast = wf["project_fastpath"]
        fallback = wf["project_fallback"]
        assert fast > 0, f"{name}: no fast-path eliminations recorded"
        assert fallback == 0, f"{name}: {fallback} fallback eliminations on a 2-SAT corpus"
        assert fast + fallback == wf["project_resolutions"], (
            f"{name}: fast {fast} + fallback {fallback} "
            f"!= eliminations {wf['project_resolutions']}"
        )
        total_wall += wf["wall_s"]
        total_project += wf["phases"]["project"]
    return total_project / total_wall


def check_project_bench(doc, src):
    inc = doc.get("incremental")
    if inc is None:
        fail(f"{src}: project report is missing the `incremental` section")
    if inc.get("name") != "edit_replay":
        fail(f"{src}: incremental section is not the edit-replay workload: {inc}")
    if inc.get("verdicts_match") is not True:
        fail(f"{src}: incremental and fresh verdict streams diverged")
    if inc["edits"] <= 0 or inc["base_clauses"] <= 0:
        fail(f"{src}: degenerate edit-replay workload: {inc}")
    floor = 1.0 if doc.get("quick") else INCREMENTAL_SPEEDUP_FLOOR
    speedup = inc["incremental_speedup"]
    print(
        f"    edit_replay: {inc['edits']} edits over {inc['base_clauses']} "
        f"base clauses, incremental {speedup:.2f}x fresh (floor {floor})"
    )
    if speedup < floor:
        fail(
            f"{src}: incremental re-check is only {speedup:.2f}x fresh "
            f"on the edit-replay workload (floor {floor})"
        )


srcs = sys.argv[1:] or ["-"]
ratios = []
for src in srcs:
    doc = benchlib.load_json(src, fail)
    if doc.get("bench") == "project":
        check_project_bench(doc, src)
    else:
        ratios.append(ratio_of(doc))
if ratios:
    best = min(ratios)
    print(
        f"    project/wall = {best:.3f} best of {[f'{r:.3f}' for r in ratios]} "
        f"(budget {PROJECT_WALL_BUDGET})"
    )
    if best > PROJECT_WALL_BUDGET:
        sys.exit(
            f"projection regression: project/wall ratio {best:.3f} "
            f"exceeds {PROJECT_WALL_BUDGET} in all {len(ratios)} run(s)"
        )
