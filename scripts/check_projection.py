#!/usr/bin/env python3
"""Projection-regression smoke over fig9 --json reports.

Guards the indexed projection engine (DESIGN.md #9) against
regressions:

* the `project` phase must stay a bounded share of with-fields wall
  time, aggregated across workloads (per-workload quick-mode walls are
  ~20 ms and too noisy to gate individually). Before the indexed
  engine the share was ~0.52; it now measures ~0.33-0.39. The gate
  takes the *minimum* ratio across the given reports — noise only ever
  inflates the share, so the cleanest run is the honest one — and
  fails above 0.45: comfortably over the clean measurement, reliably
  under the old profile.
* every fig9 workload is select/update-only (2-SAT class), so every
  elimination must take the binary-implication fast path, and the
  fast-path/fallback split must account for every elimination.

Usage: check_projection.py <fig9-json-file>... (or - for stdin)
"""

import sys

import benchlib

PROJECT_WALL_BUDGET = 0.45

fail = benchlib.failer("check_projection")


def ratio_of(doc):
    total_wall = 0.0
    total_project = 0.0
    for w in doc["workloads"]:
        wf = w["with_fields"]
        name = w["name"]
        fast = wf["project_fastpath"]
        fallback = wf["project_fallback"]
        assert fast > 0, f"{name}: no fast-path eliminations recorded"
        assert fallback == 0, f"{name}: {fallback} fallback eliminations on a 2-SAT corpus"
        assert fast + fallback == wf["project_resolutions"], (
            f"{name}: fast {fast} + fallback {fallback} "
            f"!= eliminations {wf['project_resolutions']}"
        )
        total_wall += wf["wall_s"]
        total_project += wf["phases"]["project"]
    return total_project / total_wall


srcs = sys.argv[1:] or ["-"]
ratios = [ratio_of(benchlib.load_json(src, fail)) for src in srcs]
best = min(ratios)
print(
    f"    project/wall = {best:.3f} best of {[f'{r:.3f}' for r in ratios]} "
    f"(budget {PROJECT_WALL_BUDGET})"
)
if best > PROJECT_WALL_BUDGET:
    sys.exit(
        f"projection regression: project/wall ratio {best:.3f} "
        f"exceeds {PROJECT_WALL_BUDGET} in all {len(ratios)} run(s)"
    )
