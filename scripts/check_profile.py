#!/usr/bin/env python3
"""Schema check for `rowpoly check --profile` artifacts.

Usage: check_profile.py <profile.json> [trace.json]

Validates the concurrency-profile JSON (per-worker utilization, lock
waits, critical path) and, when given, the per-worker Chrome trace
(named tracks, balanced spans, monotone timestamps). Exits non-zero
with a diagnostic on the first violation, so CI can gate on it.
"""

import sys

import benchlib

fail = benchlib.failer("check_profile")


def check_profile(doc):
    if not isinstance(doc.get("wall_ns"), int) or doc["wall_ns"] <= 0:
        fail(f"wall_ns must be a positive integer, got {doc.get('wall_ns')!r}")

    workers = doc.get("workers")
    if not isinstance(workers, list) or not workers:
        fail("workers must be a non-empty array")
    for w in workers:
        for key in ("worker", "jobs", "steals"):
            if not isinstance(w.get(key), int):
                fail(f"worker entry missing integer {key}: {w}")
        pcts = ["busy_pct", "idle_pct", "lock_wait_pct", "steal_scan_pct", "other_pct"]
        for key in pcts:
            v = w.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"worker {w['worker']}: {key} must be a non-negative number, got {v!r}")
        total = sum(w[k] for k in pcts)
        if not 99.0 <= total <= 101.0:
            fail(f"worker {w['worker']}: buckets sum to {total:.2f}%, expected ~100%")

    locks = doc.get("locks")
    if not isinstance(locks, dict):
        fail("locks must be an object")
    for name, stats in locks.items():
        if not name.startswith("lock.wait."):
            fail(f"lock key {name!r} must be namespaced lock.wait.*")
        if stats.get("contended", 0) > stats.get("acquisitions", 0):
            fail(f"{name}: contended exceeds acquisitions")
        if stats.get("wait_ns", 0) < 0 or stats.get("max_wait_ns", 0) < 0:
            fail(f"{name}: negative wait")

    jobs = doc.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        fail("jobs must be a non-empty array")
    for j in jobs:
        if not isinstance(j.get("label"), str) or ":" not in j["label"]:
            fail(f"job {j.get('job')}: label must be file:def, got {j.get('label')!r}")
        if j.get("dur_ns", -1) < 0 or j.get("start_ns", -1) < 0:
            fail(f"job {j.get('job')}: negative timing")

    cp = doc.get("critical_path")
    if not isinstance(cp, dict):
        fail("critical_path must be an object")
    if cp.get("path_ns", -1) < 0 or cp.get("serial_ns", 0) < cp.get("path_ns", 0):
        fail(f"critical path longer than total serial work: {cp}")
    ratio = cp.get("ratio")
    if not isinstance(ratio, (int, float)) or not 0.0 <= ratio <= 1.05:
        fail(f"critical_path.ratio must be in [0, 1], got {ratio!r}")
    if cp.get("ideal_speedup", 0) < 0.99:
        fail(f"ideal_speedup below 1: {cp.get('ideal_speedup')!r}")
    if not isinstance(cp.get("chain"), list):
        fail("critical_path.chain must be an array")

    return len(workers), len(jobs)


def check_trace(doc, n_workers):
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")
    if events[0].get("ph") != "M":
        fail("trace must open with a metadata record")

    named = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    if len(named) != n_workers:
        fail(f"expected {n_workers} thread_name records, found {len(named)}")
    for w in range(n_workers):
        if named.get(w + 1) != f"worker {w}":
            fail(f"tid {w + 1} must be named 'worker {w}', got {named.get(w + 1)!r}")

    last_global = float("-inf")
    tracks = {}
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            continue
        ts, tid = e.get("ts"), e.get("tid")
        if not isinstance(ts, (int, float)):
            fail(f"event without numeric ts: {e}")
        if ts < last_global:
            fail("trace not globally ts-ordered")
        last_global = ts
        last, depth = tracks.get(tid, (float("-inf"), 0))
        if ts < last:
            fail(f"tid {tid}: per-track ts order violated")
        if ph == "B":
            depth += 1
        elif ph == "E":
            depth -= 1
            if depth < 0:
                fail(f"tid {tid}: E without matching B")
        elif ph == "i":
            if e.get("s") != "t":
                fail(f"tid {tid}: instant event not thread-scoped: {e}")
        elif ph != "C":
            fail(f"unexpected phase {ph!r}")
        tracks[tid] = (ts, depth)
    for tid, (_, depth) in tracks.items():
        if depth != 0:
            fail(f"tid {tid}: {depth} unbalanced span(s)")


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    profile = benchlib.load_json(sys.argv[1], fail)
    n_workers, n_jobs = check_profile(profile)
    msg = f"profile OK ({n_workers} workers, {n_jobs} jobs"
    if len(sys.argv) > 2:
        trace = benchlib.load_json(sys.argv[2], fail)
        check_trace(trace, n_workers)
        msg += f", trace OK with {len(trace['traceEvents'])} events"
    print(f"check_profile: {msg})")


if __name__ == "__main__":
    main()
