#!/usr/bin/env python3
"""Memory-accounting gate over the committed benchmark reports.

Usage: check_mem.py <BENCH_fig9.json> [<BENCH_batch.json>] [<BENCH_serve.json>]

Each report is dispatched on its `bench` field; any subset may be
given. The reports must have been generated with `--mem` so the
counting-allocator blocks are present. Gates:

* every `mem` block follows the standard schema `rowpoly-obs::mem`
  emits (monotone size percentiles, net = alloc - freed, per-site
  attribution present);
* fig9: accounting overhead — tracked vs untracked wall, aggregated
  across workloads because the per-workload walls are tens of ms —
  stays under 5%;
* batch: allocation per definition and peak RSS stay under ceilings
  set ~3x above the measured full-corpus run, catching structural
  regressions (a leaked clone per def, an unbounded cache) while
  ignoring noise;
* serve: every workload's memo stays within its configured byte
  bound — the eviction loop actually evicts.

Exits non-zero with a diagnostic on the first violation, so CI can
gate on it.
"""

import sys

import benchlib

# fig9: tracked/untracked wall ratio, summed over workloads.
MEM_OVERHEAD_BUDGET = 0.05
# batch: measured ~440 KiB and ~4900 allocations per definition on
# the full corpus (parse + infer + render, cold cache); ~3x headroom,
# catching structural regressions (a leaked clone per def, quadratic
# clause churn) while ignoring noise.
BATCH_BYTES_PER_DEF_CEILING = 1_400_000
BATCH_ALLOCS_PER_DEF_CEILING = 15_000
# batch: peak RSS of the whole bench process, measured ~26 MiB;
# anything near this ceiling means a structure stopped being dropped
# between runs.
BATCH_PEAK_RSS_CEILING = 256 * 1024 * 1024

fail = benchlib.failer("check_mem")


def check_mem_block(mem, what, require_sites=True):
    """Validates the standard block `rowpoly_obs::mem::report_json`
    emits and returns it."""
    if mem.get("enabled") is not True:
        fail(f"{what}: mem.enabled must be true (report generated without --mem?)")
    alloc = benchlib.positive_number(mem, "alloc_bytes", what, fail)
    benchlib.positive_number(mem, "allocs", what, fail)
    freed = benchlib.nonneg_int(mem, "freed_bytes", what, fail)
    benchlib.nonneg_int(mem, "deallocs", what, fail)
    net = mem.get("net_bytes")
    if net != alloc - freed:
        fail(f"{what}: net_bytes {net!r} != alloc_bytes - freed_bytes {alloc - freed}")
    benchlib.nonneg_int(mem, "live_bytes", what, fail)
    peak = benchlib.positive_number(mem, "peak_bytes", what, fail)
    if peak < mem["live_bytes"]:
        fail(f"{what}: peak_bytes {peak} below live_bytes {mem['live_bytes']}")
    if mem.get("peak_rss_bytes") is not None:
        benchlib.positive_number(mem, "peak_rss_bytes", what, fail)
    pcts = [mem.get(k) for k in ("size_p50", "size_p90", "size_p99")]
    known = [p for p in pcts if p is not None]
    if known != sorted(known):
        fail(f"{what}: size percentiles are not monotone: {pcts}")
    hist = benchlib.require_list(mem, "size_hist", what, fail)
    for bucket in hist:
        if (
            not isinstance(bucket, list)
            or len(bucket) != 2
            or not all(isinstance(v, int) and v >= 0 for v in bucket)
        ):
            fail(f"{what}: size_hist bucket must be [lo_bytes, count], got {bucket!r}")
    sites = benchlib.require_obj(mem, "sites", what, fail)
    if require_sites and not sites:
        fail(f"{what}: no memory sites recorded — site attribution is dead")
    for name, site in sites.items():
        benchlib.positive_number(site, "enters", f"{what}: site {name}", fail)
    return mem


def check_delta(delta, what):
    """Validates a bare MemDelta object (no watermarks/sites)."""
    benchlib.positive_number(delta, "alloc_bytes", what, fail)
    benchlib.positive_number(delta, "allocs", what, fail)
    benchlib.nonneg_int(delta, "freed_bytes", what, fail)
    benchlib.nonneg_int(delta, "deallocs", what, fail)
    if delta.get("net_bytes") != delta["alloc_bytes"] - delta["freed_bytes"]:
        fail(f"{what}: net_bytes inconsistent: {delta}")


def check_fig9(doc, path):
    check_mem_block(benchlib.require_obj(doc, "mem", path, fail), f"{path}: mem")
    tracked = untracked = 0.0
    for w in benchlib.require_list(doc, "workloads", path, fail):
        name = w.get("name", "?")
        over = benchlib.require_obj(w, "mem_overhead", f"{path}: {name}", fail)
        untracked += benchlib.positive_number(
            over, "wall_s_untracked", f"{path}: {name}", fail
        )
        tracked += benchlib.positive_number(
            over, "wall_s_tracked", f"{path}: {name}", fail
        )
        for leg in ("without_fields", "with_fields"):
            run = benchlib.require_obj(w, leg, f"{path}: {name}", fail)
            check_delta(
                benchlib.require_obj(run, "mem", f"{path}: {name}.{leg}", fail),
                f"{path}: {name}.{leg}.mem",
            )
            phases = benchlib.require_obj(
                run, "phase_alloc_bytes", f"{path}: {name}.{leg}", fail
            )
            for phase, bytes_ in phases.items():
                if not isinstance(bytes_, int) or bytes_ < 0:
                    fail(f"{path}: {name}.{leg}: phase {phase} bytes {bytes_!r}")
    overhead = tracked / max(untracked, 1e-9) - 1.0
    if overhead > MEM_OVERHEAD_BUDGET:
        fail(
            f"{path}: accounting overhead {overhead * 100:.1f}% exceeds "
            f"{MEM_OVERHEAD_BUDGET * 100:.0f}% ({tracked:.3f}s tracked vs "
            f"{untracked:.3f}s untracked)"
        )
    return f"fig9 overhead {overhead * 100:+.1f}%"


def check_batch(doc, path):
    mem = check_mem_block(benchlib.require_obj(doc, "mem", path, fail), f"{path}: mem")
    bpd = benchlib.positive_number(mem, "bytes_per_def", f"{path}: mem", fail)
    apd = benchlib.positive_number(mem, "allocs_per_def", f"{path}: mem", fail)
    if bpd > BATCH_BYTES_PER_DEF_CEILING:
        fail(
            f"{path}: {bpd:.0f} allocated bytes per definition exceeds the "
            f"{BATCH_BYTES_PER_DEF_CEILING} ceiling"
        )
    if apd > BATCH_ALLOCS_PER_DEF_CEILING:
        fail(
            f"{path}: {apd:.0f} allocations per definition exceeds the "
            f"{BATCH_ALLOCS_PER_DEF_CEILING} ceiling"
        )
    rss = mem.get("peak_rss_bytes")
    if rss is not None and rss > BATCH_PEAK_RSS_CEILING:
        fail(
            f"{path}: peak RSS {rss / 2**20:.0f} MiB exceeds the "
            f"{BATCH_PEAK_RSS_CEILING // 2**20} MiB ceiling"
        )
    waves = benchlib.require_list(doc, "mem_waves", path, fail)
    peaks = [benchlib.nonneg_int(w, "peak_bytes", f"{path}: mem_waves", fail) for w in waves]
    if peaks != sorted(peaks):
        fail(f"{path}: per-wave peak_bytes must be non-decreasing, got {peaks}")
    rss_txt = "n/a" if rss is None else f"{rss / 2**20:.0f} MiB"
    return f"batch {bpd / 1024:.1f} KiB/def, {apd:.0f} allocs/def, peak RSS {rss_txt}"


def check_serve(doc, path):
    check_mem_block(benchlib.require_obj(doc, "mem", path, fail), f"{path}: mem")
    worst = 0.0
    for w in benchlib.require_list(doc, "workloads", path, fail):
        name = w.get("name", "?")
        mem = benchlib.require_obj(w, "mem", f"{path}: {name}", fail)
        check_delta(
            benchlib.require_obj(mem, "trace_delta", f"{path}: {name}.mem", fail),
            f"{path}: {name}.mem.trace_delta",
        )
        live = benchlib.nonneg_int(mem, "memo_live_bytes", f"{path}: {name}.mem", fail)
        cap = mem.get("memo_max_bytes")
        if cap is None:
            fail(f"{path}: {name}: memo byte bound is unset — eviction cannot engage")
        benchlib.positive_number(mem, "memo_max_bytes", f"{path}: {name}.mem", fail)
        if live > cap:
            fail(
                f"{path}: {name}: memo holds {live} live bytes over its "
                f"{cap}-byte bound — eviction broke"
            )
        worst = max(worst, live / cap)
    return f"serve worst memo fill {worst * 100:.0f}% of bound"


CHECKS = {"fig9": check_fig9, "batch": check_batch, "serve-edits": check_serve}


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    notes = []
    for path in sys.argv[1:]:
        doc = benchlib.load_json(path, fail)
        bench = doc.get("bench")
        check = CHECKS.get(bench)
        if check is None:
            fail(f"{path}: unknown bench {bench!r} (expected one of {sorted(CHECKS)})")
        notes.append(check(doc, path))
    print(f"check_mem: OK: {'; '.join(notes)}")


if __name__ == "__main__":
    main()
