//! The Boolean substrate on its own: build the formulas the record
//! operations generate, classify them (Section 5's complexity table), and
//! watch the three solvers agree.
//!
//! ```sh
//! cargo run --example sat_playground
//! ```

use rowpoly::boolfun::sat::{solve_with, Engine};
use rowpoly::boolfun::{classify, Cnf, FlagAlloc, Lit};

fn main() {
    let mut flags = FlagAlloc::new();
    let mut fresh = || flags.fresh();

    // --- select/update: two-variable Horn clauses (2-SAT) --------------
    // ¬fe (empty record) … fe ↔ f1 ↔ f2 … select asserts f2.
    let (fe, f1, f2) = (fresh(), fresh(), fresh());
    let mut select_chain = Cnf::top();
    select_chain.assert_lit(Lit::neg(fe));
    select_chain.iff(Lit::pos(fe), Lit::pos(f1));
    select_chain.iff(Lit::pos(f1), Lit::pos(f2));
    select_chain.assert_lit(Lit::pos(f2));
    show("select on empty record", &select_chain);

    // --- asymmetric concatenation: fr ↔ f1 ∨ f2 ------------------------
    let (a1, a2, ar) = (fresh(), fresh(), fresh());
    let mut concat = Cnf::top();
    concat.add_lits(vec![Lit::neg(ar), Lit::pos(a1), Lit::pos(a2)]);
    concat.imply(Lit::pos(a1), Lit::pos(ar));
    concat.imply(Lit::pos(a2), Lit::pos(ar));
    concat.assert_lit(Lit::pos(ar)); // a later select demands the field
    concat.assert_lit(Lit::neg(a1)); // left operand lacks it
    show("asymmetric concat, field demanded", &concat);

    // --- symmetric concatenation adds mutual exclusion -----------------
    let mut sym = concat.clone();
    sym.add_lits(vec![Lit::neg(a1), Lit::neg(a2)]);
    show("symmetric concat (¬(f1 ∧ f2) added)", &sym);

    // Duplicate field: both sides present.
    let (b1, b2) = (fresh(), fresh());
    let mut dup = Cnf::top();
    dup.assert_lit(Lit::pos(b1));
    dup.assert_lit(Lit::pos(b2));
    dup.add_lits(vec![Lit::neg(b1), Lit::neg(b2)]);
    show("symmetric concat with duplicate field", &dup);

    // --- `when N in x`: guarded clauses --------------------------------
    let (ff, ft, fe2, fr) = (fresh(), fresh(), fresh(), fresh());
    let mut when = Cnf::top();
    // ff → (fr → ft) and ¬ff → (fr → fe2); the then-branch has the field,
    // the else-branch does not, and the result is selected.
    when.add_lits(vec![Lit::neg(ff), Lit::neg(fr), Lit::pos(ft)]);
    when.add_lits(vec![Lit::pos(ff), Lit::neg(fr), Lit::pos(fe2)]);
    when.assert_lit(Lit::pos(ft));
    when.assert_lit(Lit::neg(fe2));
    when.assert_lit(Lit::pos(fr));
    show("when-conditional, result selected", &when);
}

fn show(name: &str, cnf: &Cnf) {
    let class = classify(cnf);
    let auto = solve_with(Engine::Auto, cnf);
    let cdcl = solve_with(Engine::Cdcl, cnf);
    assert_eq!(auto.is_sat(), cdcl.is_sat(), "solvers must agree");
    println!("{name}");
    println!("  β      = {cnf:?}");
    println!("  class  = {class:?}");
    match auto {
        rowpoly::boolfun::SatResult::Sat(model) => {
            let on: Vec<String> = model
                .iter()
                .filter(|(_, &v)| v)
                .map(|(f, _)| f.to_string())
                .collect();
            println!("  SAT    — fields present: [{}]", on.join(", "));
        }
        rowpoly::boolfun::SatResult::Unsat(chain) => {
            println!("  UNSAT  — conflict chain: {chain:?}");
        }
    }
    println!();
}
