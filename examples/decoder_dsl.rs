//! Generates a synthetic decoder specification (the Fig. 9 workload
//! family) and type-checks it in both configurations, printing the phase
//! breakdown — a miniature of the paper's evaluation.
//!
//! ```sh
//! cargo run --release --example decoder_dsl [target_lines]
//! ```

use std::time::Instant;

use rowpoly::core::{Options, Session};
use rowpoly::gen::generate_with_lines;

fn main() {
    let target: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(800);

    let (program, src) = generate_with_lines(target, false, 0xD15C0);
    println!(
        "generated decoder spec: {} lines, {} definitions",
        src.lines().count(),
        program.defs.len()
    );
    println!("--- first definitions ---");
    for line in src.lines().take(12) {
        println!("{line}");
    }
    println!("...\n");

    for (label, track) in [("w/o fields", false), ("w. fields", true)] {
        let opts = Options {
            track_fields: track,
            ..Options::default()
        };
        let start = Instant::now();
        let report = Session::new(opts)
            .infer_program(&program)
            .expect("generated specs always type-check");
        let elapsed = start.elapsed();
        println!(
            "{label:<11} {elapsed:>10.3?}  (unify {:?}, applyS {:?}, project {:?}, sat {:?})",
            report.stats.unify, report.stats.applys, report.stats.project, report.stats.sat
        );
        if track {
            println!(
                "            SAT class: {:?} — decoder specs use only select/update",
                report.sat_class
            );
            let sample = report
                .defs
                .iter()
                .find(|d| d.name.as_str().starts_with("decode_"))
                .expect("has decoders");
            println!("            {} : {}", sample.name, sample.render(false));
        }
    }
}
