//! An interactive type-checking loop.
//!
//! ```sh
//! cargo run --example repl
//! ```
//!
//! Enter an expression to see its inferred type (with `:flags` to toggle
//! flag display), the satisfiability class of its flow (in brackets —
//! which solver its clauses need), and its value; enter `def name … = …`
//! to extend the session's definitions.

use std::io::{BufRead, Write};

use rowpoly::core::Session;
use rowpoly::eval::eval_program;
use rowpoly::lang::{parse_expr, parse_program, pretty_expr, Def, Program, Symbol};

fn main() {
    let stdin = std::io::stdin();
    let mut program = Program::default();
    let session = Session::default();
    let mut show_flags = false;

    println!("rowpoly repl — :q quits, :flags toggles flag display, :env lists definitions");
    print!("> ");
    std::io::stdout().flush().ok();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let input = line.trim();
        match input {
            "" => {}
            ":q" | ":quit" => break,
            ":flags" => {
                show_flags = !show_flags;
                println!("flags {}", if show_flags { "on" } else { "off" });
            }
            ":env" => match session.infer_program(&program) {
                Ok(report) => {
                    for d in &report.defs {
                        println!("  {} : {}  [{}]", d.name, d.render(show_flags), d.sat_class);
                    }
                }
                Err(e) => println!("environment is inconsistent: {e}"),
            },
            _ if input.starts_with("def ") => match parse_program(input) {
                Ok(p) => {
                    let mut candidate = program.clone();
                    candidate.defs.extend(p.defs);
                    match session.infer_program(&candidate) {
                        Ok(report) => {
                            let d = report.defs.last().expect("just added");
                            println!("{} : {}  [{}]", d.name, d.render(show_flags), d.sat_class);
                            program = candidate;
                        }
                        Err(e) => print!("{}", e.to_diag().render(input)),
                    }
                }
                Err(d) => print!("{}", d.render(input)),
            },
            _ => match parse_expr(input) {
                Ok(expr) => {
                    // Type-check the expression in the session context by
                    // binding it as a throwaway definition.
                    let mut candidate = program.clone();
                    candidate.defs.push(Def {
                        name: Symbol::intern("it"),
                        span: expr.span,
                        body: expr.clone(),
                    });
                    match session.infer_program(&candidate) {
                        Ok(report) => {
                            let d = report.defs.last().expect("it");
                            println!("it : {}  [{}]", d.render(show_flags), d.sat_class);
                            match eval_program(&candidate, 1_000_000) {
                                Ok(v) => println!("   = {v}"),
                                Err(e) => println!("   (does not evaluate: {e})"),
                            }
                        }
                        Err(e) => {
                            print!("{}", e.to_diag().render(&pretty_expr(&expr)));
                        }
                    }
                }
                Err(d) => print!("{}", d.render(input)),
            },
        }
        print!("> ");
        std::io::stdout().flush().ok();
    }
    println!();
}
