//! Compiler-pass scenario from the paper's introduction: passes compute
//! and store information in the nodes of an abstract syntax tree, and the
//! inference verifies that an attribute of an AST node is computed before
//! it is accessed — including when passes run conditionally.
//!
//! ```sh
//! cargo run --example ast_attributes
//! ```

use rowpoly::core::Session;

/// Each "AST node" is a record; passes annotate it with attribute fields.
/// `resolve` adds `sym`, `typeck` reads `sym` and adds `ty`, `emit` reads
/// `ty`.
const PIPELINE: &str = r"
def resolve node = @{sym = #name_id node + 1000} node
def typeck node = @{ty = #sym node * 2} node
def emit node = #ty node

def fresh_node i = {name_id = i}

def compile i = emit (typeck (resolve (fresh_node i)))
";

fn main() {
    let session = Session::default();

    println!("correct pass order: resolve → typeck → emit");
    match session.infer_source(PIPELINE) {
        Ok(report) => {
            for d in &report.defs {
                println!("  {:<10} : {}", d.name, d.render(false));
            }
        }
        Err(e) => panic!("pipeline should check: {e}"),
    }

    // Skipping `typeck` means `emit` reads an attribute nobody computed.
    let skipped = r"
def resolve node = @{sym = #name_id node + 1000} node
def typeck node = @{ty = #sym node * 2} node
def emit node = #ty node
def compile i = emit (resolve {name_id = i})
";
    println!("\nskipping typeck:");
    match session.infer_source(skipped) {
        Ok(_) => unreachable!("`ty` was never computed"),
        Err(e) => print!("{}", e.render(skipped)),
    }

    // Running an annotation pass conditionally is fine as long as every
    // consumer is guarded the same way — `when` makes this checkable.
    let conditional = r"
def resolve node = @{sym = #name_id node + 1000} node
def maybe_typeck node = if optimize then @{ty = #sym node * 2} node
                        else node
def emit node = when ty in node then #ty node else 0 - 1
def compile i = emit (maybe_typeck (resolve {name_id = i}))
";
    println!("\nconditional typeck with a guarded consumer:");
    match session.infer_source(conditional) {
        Ok(report) => {
            let last = report.defs.last().expect("defs");
            println!("  accepted; compile : {}", last.render(false));
        }
        Err(e) => panic!("guarded consumer should check: {e}"),
    }

    // The same consumer without the guard is rejected: on the path where
    // `optimize` is false, `ty` is missing.
    let unguarded = r"
def resolve node = @{sym = #name_id node + 1000} node
def maybe_typeck node = if optimize then @{ty = #sym node * 2} node
                        else node
def emit node = #ty node
def compile i = emit (maybe_typeck (resolve {name_id = i}))
";
    println!("\nconditional typeck with an unguarded consumer:");
    match session.infer_source(unguarded) {
        Ok(_) => unreachable!("the no-optimize path lacks `ty`"),
        Err(e) => print!("{}", e.render(unguarded)),
    }
}
