//! Quickstart: parse, type-check and run small record programs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rowpoly::core::Session;
use rowpoly::eval::eval_program;
use rowpoly::lang::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A record is built field by field; `#name` selects, `@{n = e}`
    // updates, `%n` removes, `r1 @ r2` concatenates (right-biased).
    let src = r#"
def point    = {x = 3, y = 4}
def moved    = @{x = #x point + 10} point
def norm1 p  = #x p + #y p
def answer   = norm1 moved
"#;

    let session = Session::default();
    let report = session.infer_source(src)?;
    println!("inferred types:");
    for def in &report.defs {
        println!("  {:<8} : {}", def.name, def.render(false));
    }
    println!("  (hardest SAT class reached: {:?})", report.sat_class);

    let program = parse_program(src)?;
    println!("\nanswer evaluates to {}", eval_program(&program, 100_000)?);

    // Field-existence errors are caught at type-checking time, with the
    // path from the empty record to the failing access explained.
    let bad = "def broken = #colour {x = 1}";
    match session.infer_source(bad) {
        Ok(_) => unreachable!("`colour` was never added"),
        Err(e) => println!("\nrejected as expected:\n{}", e.render(bad)),
    }
    Ok(())
}
