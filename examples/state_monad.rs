//! The paper's motivating scenario: a record threaded as the state of a
//! computation, where a producer adds a field inside one branch of a
//! conditional and a consumer reads it.
//!
//! The example contrasts three inferences on the same program:
//!
//! * the flow inference (the paper's contribution) accepts `f {}` and
//!   rejects only the genuinely unsafe `#foo (f {})`;
//! * the Rémy-style `Pre`/`Abs` baseline already rejects `f {}`, because
//!   unification propagates the selector's `Pre` demand into `f`'s input;
//! * the flow-free Fig. 2 inference accepts everything (it does not track
//!   field existence at all).
//!
//! ```sh
//! cargo run --example state_monad
//! ```

use rowpoly::core::{hm, remy::RemyInfer, Session};

const SAFE: &str = r"
def f s = if some_condition then
            let s2 = @{foo = 42} s;
                v  = #foo s2
            in s2
          else s
def use = f {}
";

const UNSAFE: &str = r"
def f s = if some_condition then
            let s2 = @{foo = 42} s;
                v  = #foo s2
            in s2
          else s
def use = #foo (f {})
";

fn main() {
    let flow = Session::default();

    println!("program A: f {{}}            (safe — foo is only read after being added)");
    println!("program B: #foo (f {{}})     (unsafe — the else-path returns {{}})");
    println!();
    println!(
        "{:<28} {:>10} {:>10}",
        "inference", "program A", "program B"
    );

    let verdict = |ok: bool| if ok { "accepts" } else { "rejects" };

    println!(
        "{:<28} {:>10} {:>10}",
        "flow (this paper)",
        verdict(flow.infer_source(SAFE).is_ok()),
        verdict(flow.infer_source(UNSAFE).is_ok()),
    );
    println!(
        "{:<28} {:>10} {:>10}",
        "Remy Pre/Abs baseline",
        verdict(RemyInfer::new().infer_source(SAFE).is_ok()),
        verdict(RemyInfer::new().infer_source(UNSAFE).is_ok()),
    );
    println!(
        "{:<28} {:>10} {:>10}",
        "Fig. 2 (no field tracking)",
        verdict(hm::infer_source(SAFE).is_ok()),
        verdict(hm::infer_source(UNSAFE).is_ok()),
    );

    println!("\nthe flow inference explains the rejection of program B:");
    match flow.infer_source(UNSAFE) {
        Err(e) => println!("{}", e.render(UNSAFE)),
        Ok(_) => unreachable!("program B is unsafe"),
    }

    println!("inferred type of f (program A), with its flow:");
    let report = flow.infer_source(SAFE).expect("program A checks");
    println!("  f : {}", report.defs[0].render_with_flow());
}
